"""Immutable sorted table files (SSTables) with pluggable value compression.

An SSTable stores key/value entries in key order, grouped into data blocks,
followed by a block index, a Bloom filter and a fixed-size footer:

    [data block 0][data block 1]...[index][bloom filter][footer]

The footer records the index and Bloom-filter offsets so a reader can open the
file with two seeks.  Point lookups go Bloom filter -> index binary search ->
one block read, exactly like LevelDB/RocksDB table files.

How a block's payload is laid out is delegated to a :class:`StoragePolicy`:

* :class:`PlainPolicy` — entries stored raw (the "Uncompressed" configuration),
* :class:`BlockCompressionPolicy` — the whole block payload is compressed with a
  block codec (Zstd-like, LZMA, ...): reading one key decompresses the whole
  block, which is the trade-off Figure 5 of the paper measures,
* :class:`RecordCompressionPolicy` — each value is compressed individually with
  a :class:`repro.tierbase.compression.ValueCompressor` (e.g. trained PBC_F):
  reading one key decompresses exactly one value.

The "STB3" footer additionally stamps the table's **storage-policy identity**
(policy kind + block-codec id) and its **logical value byte count**, so a
reopened directory resolves the exact policy that wrote each table (per-level
codec policies make this vary table by table) and ``stats()`` no longer has to
re-decode every block just to report logical bytes.  "STB2" files (no stamp)
remain readable; pre-epoch "STBL" files are rejected with a typed error.

Readers hold their file descriptor open for the table's lifetime and read
blocks with ``os.pread``: a table that a background compaction has already
unlinked keeps serving a parked scan until the last reference drops (POSIX
unlink semantics), which is what fixes the scan-vs-compact crash.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.compressors.base import Codec
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, StoreError
from repro.ioutil import fsync_file
from repro.lsm.bloom import BloomFilter
from repro.tierbase.compression import ValueCompressor

#: Magic number terminating every SSTable file.  "STB3" is the self-describing
#: format: the footer carries the logical value byte count and the storage
#: policy stamp (docs/FORMATS.md §3).  "STB2" (epoch-aware blocks, 28-byte
#: footer) stays readable; pre-epoch "STBL" files are rejected with a typed
#: error instead of being silently misparsed.
_MAGIC = 0x53544233  # "STB3"
_MAGIC_V2 = 0x53544232  # "STB2" (no footer stamp; still readable)
_MAGIC_V1 = 0x5354424C  # "STBL" (pre-epoch block layout; rejected)

#: STB3 footer layout: index offset, bloom offset, entry count, logical value
#: bytes (8 bytes each) + policy kind (1) + block codec id (1) + magic (4).
_FOOTER_SIZE = 8 + 8 + 8 + 8 + 1 + 1 + 4
#: Legacy STB2 footer: index offset, bloom offset, entry count + magic.
_FOOTER_SIZE_V2 = 8 + 8 + 8 + 4

#: Flag bytes stored per entry.
_FLAG_VALUE = 0
_FLAG_TOMBSTONE = 1

#: Storage-policy kinds stamped into the STB3 footer.
POLICY_KIND_PLAIN = 0
POLICY_KIND_BLOCK = 1
POLICY_KIND_RECORD = 2


# ------------------------------------------------------------------- policies


class StoragePolicy(ABC):
    """Controls how a data block's entries are serialised and read back."""

    #: Name reported in engine statistics.
    name: str = "policy"
    #: Identity stamped into the STB3 footer (plain/block/record).
    policy_kind: int = POLICY_KIND_PLAIN

    @abstractmethod
    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        """Serialise ``entries`` (key, value-or-tombstone) into a block payload."""

    @abstractmethod
    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        """Yield every entry of a block payload in key order."""

    def lookup_in_block(self, payload: bytes, key: str) -> tuple[bool, str | None]:
        """Find ``key`` inside a block payload; returns ``(found, value)``."""
        for entry_key, value in self.iter_block(payload):
            if entry_key == key:
                return True, value
            if entry_key > key:
                break
        return False, None

    def stamp_codec_id(self) -> int:
        """One-byte block-codec id stamped into the footer (0 = none/unknown)."""
        return 0

    # Model-epoch retention hooks: only the record policy refcounts the model
    # epochs its blocks reference; the engine calls these when tables are
    # opened/published and retired, so a compaction that rewrites the last
    # block of an old epoch releases that epoch's model for pruning.

    def acquire_block_epochs(self, epochs: Iterable[int]) -> None:
        """Record live block references to model ``epochs`` (no-op here)."""

    def release_block_epochs(self, epochs: Iterable[int]) -> None:
        """Drop block references to model ``epochs`` (no-op here)."""


def _encode_entries(
    entries: Sequence[tuple[str, str | None]], encode_value
) -> bytes:
    """Shared entry serialisation: key, flag byte, encoded value."""
    out = bytearray()
    out += encode_uvarint(len(entries))
    for key, value in entries:
        key_bytes = key.encode("utf-8")
        out += encode_uvarint(len(key_bytes))
        out += key_bytes
        if value is None:
            out.append(_FLAG_TOMBSTONE)
            continue
        out.append(_FLAG_VALUE)
        value_bytes = encode_value(value)
        out += encode_uvarint(len(value_bytes))
        out += value_bytes
    return bytes(out)


def _decode_entries(payload: bytes, decode_value) -> Iterator[tuple[str, str | None]]:
    """Inverse of :func:`_encode_entries`; ``decode_value`` may be lazy."""
    count, offset = decode_uvarint(payload, 0)
    for _ in range(count):
        key_length, offset = decode_uvarint(payload, offset)
        key = payload[offset : offset + key_length].decode("utf-8")
        offset += key_length
        flag = payload[offset]
        offset += 1
        if flag == _FLAG_TOMBSTONE:
            yield key, None
            continue
        value_length, offset = decode_uvarint(payload, offset)
        value_bytes = payload[offset : offset + value_length]
        offset += value_length
        yield key, decode_value(value_bytes)


class PlainPolicy(StoragePolicy):
    """Entries stored uncompressed."""

    name = "plain"
    policy_kind = POLICY_KIND_PLAIN

    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        return _encode_entries(entries, lambda value: value.encode("utf-8"))

    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        return _decode_entries(payload, lambda value_bytes: value_bytes.decode("utf-8"))


class BlockCompressionPolicy(StoragePolicy):
    """The whole block payload is compressed with a block codec (RocksDB style)."""

    policy_kind = POLICY_KIND_BLOCK

    def __init__(self, codec: Codec) -> None:
        self.codec = codec
        self.name = f"block[{codec.name}]"

    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        raw = _encode_entries(entries, lambda value: value.encode("utf-8"))
        return self.codec.compress(raw)

    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        raw = self.codec.decompress(payload)
        return _decode_entries(raw, lambda value_bytes: value_bytes.decode("utf-8"))

    def stamp_codec_id(self) -> int:
        # The registry is the one codec-id authority; block codecs that are
        # not registered there (bespoke instances) stamp 0 = unknown, which
        # resolution treats as "match by kind".
        from repro.codecs.registry import codec_by_name
        from repro.exceptions import UnknownCodecError

        try:
            return codec_by_name(self.codec.name).codec_id
        except UnknownCodecError:
            return 0


class RecordCompressionPolicy(StoragePolicy):
    """Every value compressed individually with a trained :class:`ValueCompressor`.

    Point lookups decompress only the matched value, which is what gives the
    per-record compressors (PBC, PBC_F, FSST) their random-access advantage.

    A block is encoded in one pass against one trained model, so the model
    *epoch* is stamped once into the block header — ``uvarint(epoch)`` before
    the entry layout — and values are stored as headerless epoch bodies.
    Reads decode against the exact epoch that wrote the block, which is what
    lets a retrained compressor keep every existing SSTable readable.  The
    engine refcounts each live table's block epochs through
    :meth:`acquire_block_epochs` / :meth:`release_block_epochs`, so the
    :class:`~repro.codecs.ModelStore` can prune an old epoch once the last
    block referencing it has been compacted away.
    """

    policy_kind = POLICY_KIND_RECORD

    def __init__(self, compressor: ValueCompressor) -> None:
        self.compressor = compressor
        self.name = f"record[{compressor.name}]"

    def encode_block(self, entries: Sequence[tuple[str, str | None]]) -> bytes:
        # Plain per-record compressors (no versioned models) live at epoch 0;
        # the ValueCompressor base class supplies the epoch surface for them.
        epoch = self.compressor.current_epoch
        body = _encode_entries(
            entries, lambda value: self.compressor.compress_at(value, epoch)
        )
        return bytes(encode_uvarint(epoch)) + body

    def iter_block(self, payload: bytes) -> Iterator[tuple[str, str | None]]:
        epoch, offset = decode_uvarint(payload, 0)
        return _decode_entries(
            payload[offset:],
            lambda value_bytes: self.compressor.decompress_at(value_bytes, epoch),
        )

    def block_epoch(self, payload: bytes) -> int:
        """The model epoch stamped into a block header (diagnostics/tests)."""
        return decode_uvarint(payload, 0)[0]

    def acquire_block_epochs(self, epochs: Iterable[int]) -> None:
        for epoch in epochs:
            self.compressor.acquire_epoch(epoch)

    def release_block_epochs(self, epochs: Iterable[int]) -> None:
        for epoch in epochs:
            self.compressor.release_epoch(epoch)

    def lookup_in_block(self, payload: bytes, key: str) -> tuple[bool, str | None]:
        # Scan the entry headers without decompressing values we skip over.
        epoch, offset = decode_uvarint(payload, 0)
        count, offset = decode_uvarint(payload, offset)
        for _ in range(count):
            key_length, offset = decode_uvarint(payload, offset)
            entry_key = payload[offset : offset + key_length].decode("utf-8")
            offset += key_length
            flag = payload[offset]
            offset += 1
            if flag == _FLAG_TOMBSTONE:
                if entry_key == key:
                    return True, None
                continue
            value_length, offset = decode_uvarint(payload, offset)
            value_bytes = payload[offset : offset + value_length]
            offset += value_length
            if entry_key == key:
                return True, self.compressor.decompress_at(value_bytes, epoch)
            if entry_key > key:
                break
        return False, None


# --------------------------------------------------------------------- writer


@dataclass
class SSTableInfo:
    """Summary statistics of a written table file."""

    path: Path
    entry_count: int
    block_count: int
    file_bytes: int
    logical_value_bytes: int
    min_key: str
    max_key: str
    #: model epochs stamped into the table's blocks (record policies only).
    epochs: tuple[int, ...] = field(default=())


def write_sstable(
    path: str | Path,
    entries: Sequence[tuple[str, str | None]],
    policy: StoragePolicy,
    block_bytes: int = 4096,
    bloom_false_positive_rate: float = 0.01,
    sync: bool = False,
) -> SSTableInfo:
    """Write ``entries`` (already sorted by key, newest version only) to ``path``.

    With ``sync`` the file is fsynced before close, which the engine's atomic
    tmp-then-rename publication requires: the rename must never become durable
    before the bytes it points at.
    """
    if not entries:
        raise StoreError("cannot write an empty SSTable")
    keys = [key for key, _ in entries]
    if keys != sorted(keys):
        raise StoreError("SSTable entries must be sorted by key")
    if len(set(keys)) != len(keys):
        raise StoreError("SSTable entries must have unique keys")
    info = write_sstable_stream(
        path,
        entries,
        policy,
        approximate_entries=len(entries),
        block_bytes=block_bytes,
        bloom_false_positive_rate=bloom_false_positive_rate,
        sync=sync,
    )
    assert info is not None  # non-empty input was checked above
    return info


def write_sstable_stream(
    path: str | Path,
    entries: Iterable[tuple[str, str | None]],
    policy: StoragePolicy,
    approximate_entries: int,
    block_bytes: int = 4096,
    bloom_false_positive_rate: float = 0.01,
    sync: bool = False,
) -> SSTableInfo | None:
    """Stream an already-sorted entry iterator into an SSTable at ``path``.

    The compaction writer: memory stays O(block) regardless of how many
    entries flow through, which is what lets a background merge rewrite a
    store far bigger than RAM.  ``approximate_entries`` sizes the Bloom
    filter and must be an **upper bound** on the real entry count (a merge
    passes the sum of its inputs' entry counts; deduplication only lowers
    the false-positive rate below target).  Sortedness and uniqueness are
    validated on the fly with the same typed errors as :func:`write_sstable`.

    Returns ``None`` — and writes no file — when the iterator is empty (a
    compaction whose inputs cancel out entirely publishes nothing).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    bloom = BloomFilter(
        capacity=max(1, approximate_entries),
        false_positive_rate=bloom_false_positive_rate,
    )
    index: list[tuple[str, int, int]] = []  # (first key, offset, length)
    epochs: set[int] = set()
    record_policy = isinstance(policy, RecordCompressionPolicy)
    logical_value_bytes = 0
    entry_count = 0
    previous_key: str | None = None
    min_key: str | None = None
    handle = None

    try:
        offset = 0
        block: list[tuple[str, str | None]] = []
        block_logical = 0

        def flush_block() -> None:
            nonlocal offset, block, block_logical
            if not block:
                return
            payload = policy.encode_block(block)
            if record_policy:
                epochs.add(decode_uvarint(payload, 0)[0])
            index.append((block[0][0], offset, len(payload)))
            handle.write(payload)
            offset += len(payload)
            block = []
            block_logical = 0

        for key, value in entries:
            if previous_key is not None:
                if key < previous_key:
                    raise StoreError("SSTable entries must be sorted by key")
                if key == previous_key:
                    raise StoreError("SSTable entries must have unique keys")
            if handle is None:
                handle = open(path, "wb")
                min_key = key
            previous_key = key
            entry_count += 1
            bloom.add(key.encode("utf-8"))
            entry_size = len(key.encode("utf-8")) + (len(value.encode("utf-8")) if value else 0)
            logical_value_bytes += len(value.encode("utf-8")) if value else 0
            if block and block_logical + entry_size > block_bytes:
                flush_block()
            block.append((key, value))
            block_logical += entry_size
        if handle is None:
            return None
        flush_block()

        index_offset = offset
        index_payload = bytearray()
        index_payload += encode_uvarint(len(index))
        for first_key, block_offset, block_length in index:
            key_bytes = first_key.encode("utf-8")
            index_payload += encode_uvarint(len(key_bytes))
            index_payload += key_bytes
            index_payload += encode_uvarint(block_offset)
            index_payload += encode_uvarint(block_length)
        handle.write(bytes(index_payload))
        offset += len(index_payload)

        bloom_offset = offset
        bloom_payload = bloom.to_bytes()
        handle.write(bloom_payload)
        offset += len(bloom_payload)

        footer = (
            index_offset.to_bytes(8, "big")
            + bloom_offset.to_bytes(8, "big")
            + entry_count.to_bytes(8, "big")
            + logical_value_bytes.to_bytes(8, "big")
            + bytes([policy.policy_kind & 0xFF, policy.stamp_codec_id() & 0xFF])
            + _MAGIC.to_bytes(4, "big")
        )
        handle.write(footer)
        if sync:
            fsync_file(handle)
    except BaseException:
        if handle is not None:
            handle.close()
            handle = None
            path.unlink(missing_ok=True)
        raise
    finally:
        if handle is not None:
            handle.close()

    return SSTableInfo(
        path=path,
        entry_count=entry_count,
        block_count=len(index),
        file_bytes=path.stat().st_size,
        logical_value_bytes=logical_value_bytes,
        min_key=min_key if min_key is not None else "",
        max_key=previous_key if previous_key is not None else "",
        epochs=tuple(sorted(epochs)),
    )


# --------------------------------------------------------------------- reader


class SSTable:
    """Read-only view over a table file written by :func:`write_sstable`.

    The file descriptor opened at construction stays open for the object's
    lifetime and every block read is an ``os.pread`` on it: thread-safe
    (no shared seek position) and immune to the path being unlinked by a
    compaction — a parked iterator keeps reading the dead file until the
    table object itself is garbage-collected (or :meth:`close` is called).
    """

    #: slot id / level assigned by the owning engine (diagnostics; -1 = free-standing).
    table_id: int = -1
    level: int = 0

    def __init__(self, path: str | Path, policy: StoragePolicy) -> None:
        self.path = Path(path)
        self.policy = policy
        self._fd = -1
        try:
            self._fd = os.open(str(self.path), os.O_RDONLY)
        except FileNotFoundError:
            raise StoreError(f"SSTable file {self.path} does not exist") from None
        try:
            file_size = os.fstat(self._fd).st_size
            self._file_bytes = file_size
            self._parse_footer(file_size)
            # A torn or bit-flipped file that happens to keep a valid-looking
            # footer must still fail *typed* — never feed garbage offsets into
            # varint parsing and return misdecoded entries.
            try:
                self._load_metadata(file_size)
            except StoreError:
                raise
            except (DecodingError, UnicodeDecodeError, IndexError, ValueError) as error:
                raise StoreError(
                    f"SSTable file {self.path} has a corrupt metadata section"
                ) from error
        except BaseException:
            os.close(self._fd)
            self._fd = -1
            raise

    def _parse_footer(self, file_size: int) -> None:
        if file_size < _FOOTER_SIZE_V2:
            raise StoreError(f"SSTable file {self.path} is too small to contain a footer")
        magic = int.from_bytes(os.pread(self._fd, 4, file_size - 4), "big")
        if magic == _MAGIC_V1:
            raise StoreError(
                f"SSTable file {self.path} uses the pre-epoch 'STBL' block layout; "
                "rewrite it with this version (record-policy blocks now carry a "
                "model-epoch header)"
            )
        if magic == _MAGIC:
            if file_size < _FOOTER_SIZE:
                raise StoreError(
                    f"SSTable file {self.path} is too small to contain a footer"
                )
            footer = os.pread(self._fd, _FOOTER_SIZE, file_size - _FOOTER_SIZE)
            self._index_offset = int.from_bytes(footer[0:8], "big")
            self._bloom_offset = int.from_bytes(footer[8:16], "big")
            self.entry_count = int.from_bytes(footer[16:24], "big")
            self._logical_value_bytes: int | None = int.from_bytes(footer[24:32], "big")
            self.policy_stamp: tuple[int, int] | None = (footer[32], footer[33])
            metadata_end = file_size - _FOOTER_SIZE
        elif magic == _MAGIC_V2:
            footer = os.pread(self._fd, _FOOTER_SIZE_V2, file_size - _FOOTER_SIZE_V2)
            self._index_offset = int.from_bytes(footer[0:8], "big")
            self._bloom_offset = int.from_bytes(footer[8:16], "big")
            self.entry_count = int.from_bytes(footer[16:24], "big")
            self._logical_value_bytes = None  # computed lazily on first use
            self.policy_stamp = None
            metadata_end = file_size - _FOOTER_SIZE_V2
        else:
            raise StoreError(f"SSTable file {self.path} has a bad magic number")
        self._metadata_end = metadata_end
        if not 0 <= self._index_offset <= self._bloom_offset <= metadata_end:
            raise StoreError(
                f"SSTable file {self.path} is corrupt: footer offsets do not fit the file"
            )

    @staticmethod
    def read_stamp(path: str | Path) -> tuple[int, int] | None:
        """The ``(policy_kind, codec_id)`` stamp of an STB3 file, else ``None``.

        Cheap (two small reads, no metadata parse) — the engine uses it during
        recovery to resolve each table's storage policy before opening it.
        Returns ``None`` for legacy "STB2" files and for anything unreadable;
        the :class:`SSTable` constructor is where malformed files fail typed.
        """
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size < _FOOTER_SIZE:
                    return None
                handle.seek(size - _FOOTER_SIZE)
                footer = handle.read(_FOOTER_SIZE)
        except OSError:
            return None
        if int.from_bytes(footer[-4:], "big") != _MAGIC:
            return None
        return footer[32], footer[33]

    def _load_metadata(self, file_size: int) -> None:
        metadata = os.pread(
            self._fd, self._metadata_end - self._index_offset, self._index_offset
        )
        index_payload = metadata[: self._bloom_offset - self._index_offset]
        bloom_payload = metadata[self._bloom_offset - self._index_offset :]
        block_count, offset = decode_uvarint(index_payload, 0)
        self._index: list[tuple[str, int, int]] = []
        for _ in range(block_count):
            key_length, offset = decode_uvarint(index_payload, offset)
            first_key = index_payload[offset : offset + key_length].decode("utf-8")
            offset += key_length
            block_offset, offset = decode_uvarint(index_payload, offset)
            block_length, offset = decode_uvarint(index_payload, offset)
            if block_offset + block_length > self._index_offset:
                raise StoreError(
                    f"SSTable file {self.path} is corrupt: data block overruns the index"
                )
            self._index.append((first_key, block_offset, block_length))
        self._first_keys = [first_key for first_key, _, _ in self._index]
        self._bloom, _ = BloomFilter.from_bytes(bloom_payload, 0)

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the held file descriptor (idempotent)."""
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def retire(self) -> None:
        """Unlink the table file; the open descriptor keeps serving readers.

        Called by the engine once a compaction's output supersedes this
        table.  Disk space is reclaimed when the last reference (a parked
        scan, a snapshot list) drops and the descriptor closes.
        """
        self.path.unlink(missing_ok=True)

    # ------------------------------------------------------------------- read

    @property
    def block_count(self) -> int:
        """Number of data blocks."""
        return len(self._index)

    @property
    def file_bytes(self) -> int:
        """On-disk size of the table file (captured at open; survives unlink)."""
        return self._file_bytes

    @property
    def logical_value_bytes(self) -> int:
        """Uncompressed bytes of every live value in the table.

        STB3 files answer from the footer; legacy STB2 files pay one full
        decode on first use and cache the result (the table is immutable).
        """
        if self._logical_value_bytes is None:
            logical = 0
            for _, value in self.scan():
                if value is not None:
                    logical += len(value.encode("utf-8"))
            self._logical_value_bytes = logical
        return self._logical_value_bytes

    def block_epochs(self) -> tuple[int, ...]:
        """Model epochs referenced by this table's blocks (record policy only).

        Reads only each block's uvarint header prefix via ``pread`` — no
        value is decompressed — so the engine can refcount epoch retention
        at table-open time in O(blocks) tiny reads.
        """
        if not hasattr(self.policy, "block_epoch"):
            return ()
        epochs: set[int] = set()
        for _, block_offset, block_length in self._index:
            prefix = os.pread(self._fd, min(10, block_length), block_offset)
            epochs.add(decode_uvarint(prefix, 0)[0])
        return tuple(sorted(epochs))

    def _read_block(self, position: int) -> bytes:
        _, block_offset, block_length = self._index[position]
        if self._fd < 0:
            raise StoreError(f"SSTable {self.path} is closed")
        return os.pread(self._fd, block_length, block_offset)

    def get(self, key: str) -> tuple[bool, str | None]:
        """Point lookup; returns ``(found, value)`` where a found tombstone is ``(True, None)``."""
        if not self._index:
            return False, None
        if not self._bloom.might_contain(key.encode("utf-8")):
            return False, None
        position = bisect_right(self._first_keys, key) - 1
        if position < 0:
            return False, None
        return self.policy.lookup_in_block(self._read_block(position), key)

    def scan(self) -> Iterator[tuple[str, str | None]]:
        """All entries in key order (tombstones included, used by compaction)."""
        for position in range(len(self._index)):
            yield from self.policy.iter_block(self._read_block(position))

    def range(self, start: str | None = None, end: str | None = None) -> Iterator[tuple[str, str | None]]:
        """Entries with ``start <= key < end`` in key order (tombstones included).

        Seeks: the block index places the first candidate block, so a narrow
        range over a large table reads only the blocks it overlaps.
        """
        first = 0
        if start is not None:
            first = max(bisect_right(self._first_keys, start) - 1, 0)
        for position in range(first, len(self._index)):
            if end is not None and self._first_keys[position] >= end:
                return
            for key, value in self.policy.iter_block(self._read_block(position)):
                if start is not None and key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield key, value
