"""In-memory write buffer (memtable) of the LSM engine.

The memtable absorbs writes until it reaches a size threshold, at which point
the engine flushes it into an immutable, sorted SSTable.  Deletions are
recorded as tombstones so they shadow older versions of the key living in
SSTables until a compaction drops them.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import StoreError

#: Sentinel stored for deleted keys (a tombstone shadows older SSTable entries).
TOMBSTONE = None


class MemTable:
    """A sorted in-memory map from string keys to string values or tombstones."""

    def __init__(self) -> None:
        self._entries: dict[str, str | None] = {}
        self._approximate_bytes = 0

    # ------------------------------------------------------------------ write

    def put(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""
        if not key:
            raise StoreError("keys must be non-empty strings")
        self._account(key, value)
        self._entries[key] = value

    def delete(self, key: str) -> None:
        """Record a tombstone for ``key`` (the key need not exist)."""
        if not key:
            raise StoreError("keys must be non-empty strings")
        self._account(key, TOMBSTONE)
        self._entries[key] = TOMBSTONE

    def _account(self, key: str, value: str | None) -> None:
        previous = self._entries.get(key, "")
        previous_size = len(previous.encode("utf-8")) if previous else 0
        new_size = len(value.encode("utf-8")) if value else 0
        if key not in self._entries:
            self._approximate_bytes += len(key.encode("utf-8"))
        self._approximate_bytes += new_size - previous_size

    # ------------------------------------------------------------------- read

    def get(self, key: str) -> tuple[bool, str | None]:
        """Look up ``key``.

        Returns ``(found, value)`` where ``found`` is ``True`` even for
        tombstones — the engine must know the key was deleted here rather than
        fall through to older SSTables.
        """
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def approximate_bytes(self) -> int:
        """Approximate memory footprint of keys and values."""
        return self._approximate_bytes

    def items(self) -> Iterator[tuple[str, str | None]]:
        """All entries in key order (tombstones included)."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def range(
        self, start: str | None = None, end: str | None = None
    ) -> Iterator[tuple[str, str | None]]:
        """Entries with ``start <= key < end`` in key order (tombstones included)."""
        for key in sorted(self._entries):
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                return
            yield key, self._entries[key]

    def clear(self) -> None:
        """Drop all entries (after a successful flush)."""
        self._entries.clear()
        self._approximate_bytes = 0
