"""A log-structured merge-tree storage engine with pluggable value compression.

This is the reproduction's stand-in for the RocksDB/LevelDB-class engines the
paper's introduction targets: engines that compress stored data either in
blocks (general-purpose codecs) or — after integrating PBC — per record.  The
engine combines

* a write-ahead log (:mod:`repro.lsm.wal`) for durability,
* an in-memory memtable (:mod:`repro.lsm.memtable`) absorbing writes,
* immutable SSTables (:mod:`repro.lsm.sstable`) produced by flushes, and
* a tiered, levelled compaction: flushes make level-0 tables; once a level
  accumulates ``compaction_trigger`` tables they are merged — a streaming
  k-way merge in O(block) memory, not O(store) — into one table at the next
  level, keeping the newest version of every key (tombstones are dropped only
  when the merge includes the oldest live table, so nothing deleted can
  resurface from below).

Compaction runs **off the write path** when ``background_compaction=True``: a
:class:`~repro.lsm.compaction.CompactionScheduler` thread drains merges while
writers continue, and L0 **admission control** (slowdown sleeps, then a
condition-variable stall) throttles ``put()`` when tables pile up instead of
parking it for a full merge — which is what keeps sustained-write throughput
flat instead of sawtoothed.  The default is inline compaction after each
flush, preserving the deterministic single-threaded behaviour the durability
harness and the bare-engine tests rely on.

Each level can use its own storage policy (``level_policies``): the service
keeps the hot L0 raw, mid levels block-compressed, and cold levels on the
trained per-record compressor — and a compaction into a record-policy level
first gives the owning backend a chance to retrain (``compaction_hook``), so
a new model epoch is installed exactly when the cold data is being rewritten
anyway and the old epoch's last references are compacted away for free.

Reads consult the memtable first, then SSTables newest-first, so the engine
has standard LSM read/write semantics.

Durability (docs/ARCHITECTURE.md, "Durability"): what an acknowledged write
survives is the WAL ``sync_mode`` policy (``"none"`` / ``"flush"`` /
``"fsync"``), and SSTables are **published atomically** — written to a
``*.sst.tmp`` sibling, fsynced, ``os.replace``-d into place, directory
fsynced — so recovery can never open a torn table.  A leftover ``*.tmp`` from
a crashed flush or compaction is quarantined on reopen (its contents are
still covered by the WAL or by the surviving old tables); a compaction that
crashed *after* publishing its output leaves its inputs behind, and recovery
quarantines those superseded tables by the level/id ordering invariant.  A
corrupted published ``*.sst`` raises a typed
:class:`~repro.exceptions.StoreError` instead of garbage reads.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import StoreError
from repro.ioutil import fsync_directory
from repro.lsm.compaction import CompactionConfig, CompactionScheduler
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import (
    POLICY_KIND_PLAIN,
    POLICY_KIND_RECORD,
    PlainPolicy,
    SSTable,
    StoragePolicy,
    write_sstable,
    write_sstable_stream,
)
from repro.lsm.wal import OP_DELETE, OP_PUT, SYNC_MODES, WriteAheadLog
from repro.oplog.log import OperationLog
from repro.oplog.sink import LogSink

#: Subdirectory where recovery parks leftover ``*.tmp`` files and superseded
#: tables (never deleted: they are evidence of a crash, and deleting data is
#: not recovery's call).
QUARANTINE_DIR = "quarantine"


@dataclass
class EngineStats:
    """Point-in-time statistics of an :class:`LSMEngine`."""

    policy: str
    memtable_entries: int
    memtable_bytes: int
    sstable_count: int
    sstable_file_bytes: int
    logical_value_bytes: int
    flushes: int
    compactions: int

    @property
    def space_ratio(self) -> float:
        """Physical bytes (SSTable files + memtable) over logical value bytes.

        ``logical_value_bytes`` counts memtable values as well as SSTable
        values (the PR-5 bugfix: counting only SSTable values made the ratio
        report ~1.0 — 0/0 — while every byte sat uncompressed in the
        memtable), so the numerator includes the memtable's footprint too.
        After a flush the memtable terms are zero and this is exactly the
        on-disk ratio it always was.
        """
        if self.logical_value_bytes == 0:
            return 1.0
        return (self.sstable_file_bytes + self.memtable_bytes) / self.logical_value_bytes


@dataclass(frozen=True)
class DiskStats:
    """Cheap durable-footprint counters (no table scan; see ``disk_stats``)."""

    sstable_count: int
    sstable_file_bytes: int
    wal_bytes: int
    wal_fsyncs: int
    wal_fsync_seconds: float
    #: distinct table levels currently live (0 when the store is empty).
    levels: int = 0
    #: bytes sitting in levels that have reached the compaction trigger.
    pending_compaction_bytes: int = 0
    #: cumulative seconds writes spent throttled by admission control.
    compaction_stall_seconds: float = 0.0
    #: merges performed (background + inline + explicit ``compact()``).
    compactions: int = 0

    @property
    def bytes_on_disk(self) -> int:
        """Total durable footprint: SSTable files plus the live WAL."""
        return self.sstable_file_bytes + self.wal_bytes


@dataclass
class LookupTiming:
    """Outcome of a point-lookup throughput measurement."""

    lookups: int
    hits: int
    elapsed_seconds: float

    @property
    def lookups_per_second(self) -> float:
        """Point lookups per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.lookups / self.elapsed_seconds


def _parse_table_name(path: Path) -> tuple[int, int] | None:
    """``(table_id, level)`` from ``sstable-NNNNNN[-LLL].sst``, else ``None``.

    Tables written before levelled compaction (``sstable-NNNNNN.sst``) parse
    as level 0, so an old directory reopens seamlessly.
    """
    parts = path.stem.split("-")
    try:
        table_id = int(parts[1])
        level = int(parts[2]) if len(parts) > 2 else 0
    except (IndexError, ValueError):
        return None
    return table_id, level


class LSMEngine:
    """A single-node LSM key-value engine with pluggable SSTable compression.

    Thread model: any number of reader threads (``get``/``scan``/stats) may
    run concurrently with one writer thread and the background compactor.
    The internal lock only guards metadata (table list, memtable swaps);
    block reads are lock-free ``pread`` calls on per-table descriptors, and
    a parked :meth:`scan` iterator keeps its table snapshot readable even
    after a compaction retires those tables (held descriptors pin them).
    """

    def __init__(
        self,
        directory: str | Path,
        policy: StoragePolicy | None = None,
        memtable_bytes: int = 64 * 1024,
        block_bytes: int = 4096,
        compaction_trigger: int = 4,
        sync_mode: str = "flush",
        fsync_interval_bytes: int = 0,
        background_compaction: bool = False,
        level_policies: Mapping[int, StoragePolicy] | None = None,
        compaction: CompactionConfig | None = None,
        compaction_hook: Callable[[int], None] | None = None,
        epoch_provider: Callable[[], int] | None = None,
    ) -> None:
        if memtable_bytes < 1:
            raise StoreError("memtable size threshold must be positive")
        if compaction_trigger < 2:
            raise StoreError("compaction trigger must be at least 2")
        if sync_mode not in SYNC_MODES:
            raise StoreError(f"unknown sync_mode {sync_mode!r}; choose from {SYNC_MODES}")
        if level_policies is not None and any(level < 0 for level in level_policies):
            raise StoreError("level_policies keys must be non-negative levels")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.policy = policy if policy is not None else PlainPolicy()
        self.memtable_bytes = memtable_bytes
        self.block_bytes = block_bytes
        self.compaction_trigger = compaction_trigger
        self.sync_mode = sync_mode
        self.compaction_config = compaction if compaction is not None else CompactionConfig()
        self._slowdown_tables, self._stall_tables = self.compaction_config.resolve(
            compaction_trigger
        )
        self._level_policies = dict(level_policies) if level_policies else {}
        self._compaction_hook = compaction_hook
        self._memtable = MemTable()
        self._wal = WriteAheadLog(
            self.directory / "wal.log",
            sync_mode=sync_mode,
            fsync_interval_bytes=fsync_interval_bytes,
        )
        #: the shard's mutation spine: sequences every put/delete, fans the
        #: LSN-stamped records to the WAL and any attached replication sinks.
        self._oplog = OperationLog(sinks=[self._wal])
        self._epoch_provider = epoch_provider
        #: contiguous max LSN the write-ahead log replayed at startup (0 for
        #: a fresh or fully-flushed-then-legacy directory).
        self.recovered_lsn = 0
        #: live tables ordered oldest-data-first.  Invariant: sorted by
        #: ``(table_id, level)``, and level is non-increasing as id grows
        #: (deep levels hold old data, L0 the newest), because a merge's
        #: output takes its newest input's id at level+1 and fresh flushes
        #: always take a larger id at level 0.
        self._tables: list[SSTable] = []
        self._next_table_id = 0
        self._flushes = 0
        self._compactions = 0
        #: admission-control accounting (see ``_admission_control``).
        self._stalls = 0
        self._slowdowns = 0
        self._stall_seconds = 0.0
        self._closed = False
        #: guards _tables/_memtable/_next_table_id/counters; reads snapshot
        #: under it and release it before touching any block data.
        self._lock = threading.RLock()
        self._stall_condition = threading.Condition(self._lock)
        #: serialises merges (background scheduler vs explicit ``compact()``).
        self._compact_mutex = threading.Lock()
        self._recover()
        self.background_compaction = background_compaction
        self._scheduler: CompactionScheduler | None = None
        if background_compaction:
            self._scheduler = CompactionScheduler(
                self, name=f"lsm-compaction-{self.directory.name}"
            )
            self._scheduler.notify()  # recovery may have left a backlog

    # --------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Re-open existing SSTables and replay the write-ahead log.

        Leftover ``*.tmp`` files are a crashed flush/compaction that never
        reached its ``os.replace`` — their contents are still covered by the
        WAL (flush) or by the surviving pre-compaction tables (compact), so
        they are quarantined, not opened and not deleted.  A compaction that
        crashed *after* publishing its output but before unlinking its
        inputs leaves tables the output supersedes: a table is superseded
        exactly when some table at a **deeper level** has an id at least as
        large (the merge output reuses its newest input's id one level
        down), and those are quarantined too.  A published ``*.sst`` that
        fails to open is corruption from outside the engine's crash model
        and raises the typed :class:`StoreError` from the reader.
        """
        for tmp_path in sorted(self.directory.glob("*.tmp")):
            self._quarantine(tmp_path)
        found: list[tuple[int, int, Path]] = []
        for path in sorted(self.directory.glob("sstable-*.sst")):
            parsed = _parse_table_name(path)
            if parsed is None:
                raise StoreError(f"unrecognised SSTable file name {path.name}")
            found.append((parsed[0], parsed[1], path))
            self._next_table_id = max(self._next_table_id, parsed[0] + 1)
        live = [
            (table_id, level, path)
            for table_id, level, path in found
            if not any(
                other_level > level and other_id >= table_id
                for other_id, other_level, _ in found
            )
        ]
        for table_id, level, path in found:
            if (table_id, level, path) not in live:
                self._quarantine(path)
        live.sort(key=lambda entry: (entry[0], entry[1]))
        for table_id, level, path in live:
            table = SSTable(path, self._resolve_policy(path, level))
            table.table_id = table_id
            table.level = level
            table.policy.acquire_block_epochs(table.block_epochs())
            self._tables.append(table)
        for record in self._wal.replay_records():
            if record.op == OP_PUT:
                self._memtable.put(record.key, record.value.decode("utf-8"))
            elif record.op == OP_DELETE:
                self._memtable.delete(record.key)
            # Checkpoints carry no mutation, only the LSN watermark below.
            self.recovered_lsn = record.lsn
        # Resume the sequence past everything replayed (legacy records come
        # back with synthesised LSNs, checkpoints with the flushed prefix's
        # last LSN) — an LSN is never issued twice across a reopen.
        self._oplog.advance_to(self.recovered_lsn)

    def _resolve_policy(self, path: Path, level: int) -> StoragePolicy:
        """Pick the storage policy a recovered table was written with.

        STB3 tables carry a ``(policy_kind, codec_id)`` stamp; resolution
        prefers the policy configured for the table's level, then any
        configured policy of the same kind, then a fresh plain policy for
        plain tables.  A stamped kind with no matching configured policy is
        a misconfiguration (e.g. a record-compressed table reopened without
        its trained compressor) and fails typed.  Legacy STB2 tables carry
        no stamp and open with the engine's default policy, exactly as the
        engine that wrote them did.
        """
        stamp = SSTable.read_stamp(path)
        if stamp is None:
            return self.policy
        kind, codec_id = stamp
        candidates = [self._policy_for_level(level)]
        candidates.extend(
            policy for _, policy in sorted(self._level_policies.items())
        )
        candidates.append(self.policy)
        for candidate in candidates:
            if candidate.policy_kind != kind:
                continue
            stamped = candidate.stamp_codec_id()
            if codec_id and stamped and stamped != codec_id:
                continue
            return candidate
        if kind == POLICY_KIND_PLAIN:
            return PlainPolicy()
        raise StoreError(
            f"SSTable file {path} was written by a storage policy of kind {kind} "
            "but no configured policy matches it"
        )

    def _quarantine(self, path: Path) -> None:
        quarantine = self.directory / QUARANTINE_DIR
        quarantine.mkdir(exist_ok=True)
        target = quarantine / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine / f"{path.name}.{suffix}"
        os.replace(path, target)

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError("engine is closed")

    # ---------------------------------------------------------------- levels

    def _policy_for_level(self, level: int) -> StoragePolicy:
        """Storage policy for tables written at ``level``.

        An exact entry wins; otherwise the deepest configured level not
        exceeding ``level`` applies, so levels past the end of the table
        inherit the coldest configured policy.  With no per-level
        configuration every level uses the engine default.
        """
        if not self._level_policies:
            return self.policy
        if level in self._level_policies:
            return self._level_policies[level]
        configured = [entry for entry in self._level_policies if entry <= level]
        if configured:
            return self._level_policies[max(configured)]
        return self.policy

    def _level_count(self, level: int) -> int:
        return sum(1 for table in self._tables if table.level == level)

    # ------------------------------------------------------------------ write

    def _current_epoch(self) -> int:
        return self._epoch_provider() if self._epoch_provider is not None else 0

    def put(self, key: str, value: str) -> int:
        """Insert or overwrite ``key``; returns the assigned LSN."""
        self._require_open()
        with self._lock:
            record = self._oplog.append(
                OP_PUT, key, value.encode("utf-8"), self._current_epoch()
            )
            self._memtable.put(key, value)
            self._maybe_flush()
        self._admission_control()
        return record.lsn

    def delete(self, key: str) -> int:
        """Delete ``key`` (a no-op if it never existed); returns the LSN."""
        self._require_open()
        with self._lock:
            record = self._oplog.append(OP_DELETE, key, b"", self._current_epoch())
            self._memtable.delete(key)
            self._maybe_flush()
        self._admission_control()
        return record.lsn

    def put_many(self, items: Sequence[tuple[str, str]]) -> int:
        """Bulk insert: one batched WAL write, one flush check, one throttle.

        Returns the batch's **last** assigned LSN (0 for an empty batch).
        The WAL batch is a single buffer/flush/fsync, so an N-record batch
        pays one durability barrier instead of N (same ``sync_mode``
        guarantee: the batch is acknowledged only once the whole buffer is
        durable to the mode's point, and a torn batch replays as a prefix).
        """
        self._require_open()
        items = list(items)
        if not items:
            return self._oplog.last_lsn
        with self._lock:
            epoch = self._current_epoch()
            records = self._oplog.append_many(
                [(OP_PUT, key, value.encode("utf-8"), epoch) for key, value in items]
            )
            for key, value in items:
                self._memtable.put(key, value)
            self._maybe_flush()
        self._admission_control()
        return records[-1].lsn

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes >= self.memtable_bytes:
            self.flush()

    def _admission_control(self) -> None:
        """Throttle the write path when L0 outruns the background compactor.

        Two watermarks (RocksDB's slowdown/stop pattern): in the slowdown
        band each write sleeps a couple of milliseconds, shedding load
        smoothly; at the stall watermark the writer blocks on the condition
        variable the compactor notifies after every merge.  If the scheduler
        died, the stalled writer compacts inline rather than deadlocking.
        Inline-compaction engines never throttle — their flush already did
        the work synchronously.
        """
        scheduler = self._scheduler
        if scheduler is None or self._closed:
            return
        with self._lock:
            level0 = self._level_count(0)
        if level0 < self._slowdown_tables:
            return
        started = time.perf_counter()
        scheduler.notify()
        if level0 >= self._stall_tables:
            with self._stall_condition:
                while (
                    self._level_count(0) >= self._stall_tables
                    and scheduler.alive
                    and scheduler.error is None
                ):
                    self._stall_condition.wait(
                        timeout=self.compaction_config.poll_seconds
                    )
            self._stalls += 1
            if not scheduler.alive or scheduler.error is not None:
                while self._compact_once():
                    pass
        else:
            time.sleep(self.compaction_config.slowdown_sleep_seconds)
            self._slowdowns += 1
        self._stall_seconds += time.perf_counter() - started

    def _publish_sstable(
        self, entries: Sequence[tuple[str, str | None]], level: int = 0
    ) -> SSTable:
        """Atomically publish ``entries`` as the next numbered SSTable.

        Write to ``*.sst.tmp``, fsync the bytes, ``os.replace`` onto the final
        name, fsync the directory: a crash at any point leaves either no table
        (a quarantinable tmp) or a complete one — never a torn ``*.sst``.
        The fsyncs are skipped in ``sync_mode="none"`` (the throughput
        baseline); the atomic rename is not.
        """
        policy = self._policy_for_level(level)
        sync = self.sync_mode != "none"
        path = self.directory / f"sstable-{self._next_table_id:06d}-{level:03d}.sst"
        tmp_path = path.with_name(path.name + ".tmp")
        write_sstable(tmp_path, entries, policy, block_bytes=self.block_bytes, sync=sync)
        os.replace(tmp_path, path)
        if sync:
            fsync_directory(self.directory)
        table = SSTable(path, policy)
        table.table_id = self._next_table_id
        table.level = level
        policy.acquire_block_epochs(table.block_epochs())
        self._next_table_id += 1
        return table

    def flush(self) -> None:
        """Write the memtable to a new level-0 SSTable and reset the WAL.

        Ordering is the recovery contract: the table is durably published
        *before* the WAL is truncated, so a crash in between replays WAL
        records whose effects the new table already holds — idempotent —
        rather than losing records covered by neither.
        """
        self._require_open()
        with self._lock:
            if len(self._memtable) == 0:
                return
            self._tables.append(self._publish_sstable(list(self._memtable.items())))
            self._memtable.clear()
            # Checkpoint the truncated log with the LSN the flushed prefix
            # reached: recovery resumes the sequence there, never reuses one.
            self._wal.reset(checkpoint_lsn=self._oplog.last_lsn)
            self._flushes += 1
        if self._scheduler is not None:
            self._scheduler.notify()
        else:
            while self._compact_once():
                pass

    # -------------------------------------------------------------- operation log

    @property
    def oplog(self) -> OperationLog:
        """The engine's mutation spine (attach replication sinks here)."""
        return self._oplog

    @property
    def last_applied_lsn(self) -> int:
        """The newest LSN this engine has assigned (0 before the first write)."""
        return self._oplog.last_lsn

    def attach_sink(self, sink: LogSink) -> LogSink:
        """Attach a sink (e.g. a :class:`~repro.oplog.sink.SubscriberSink`);
        it sees every mutation from this point on, in LSN order."""
        return self._oplog.attach(sink)

    def detach_sink(self, sink: LogSink) -> None:
        self._oplog.detach(sink)

    # ------------------------------------------------------------------- read

    def get(self, key: str) -> str | None:
        """Point lookup; returns ``None`` for missing or deleted keys."""
        self._require_open()
        with self._lock:
            found, value = self._memtable.get(key)
            if found:
                return value
            tables = list(self._tables)
        for table in reversed(tables):
            found, value = table.get(key)
            if found:
                return value
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def scan(
        self,
        start: str | None = None,
        end: str | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[str, str]]:
        """Live entries with ``start <= key < end`` in key order, newest version wins.

        A true k-way merge over per-table range iterators (which seek via the
        block index) and a point-in-time memtable snapshot — tables are not
        materialised, so a small ``limit`` over a large store reads only the
        blocks it touches before short-circuiting.  The iterator owns a
        reference to every table it reads: a compaction retiring those
        tables only unlinks their paths, and the held file descriptors keep
        a **parked** scan readable until it is garbage-collected (this is
        the scan-vs-compact crash fix).  Tombstones shadow older versions
        and are never yielded; ``limit`` counts live results.  ``start`` is
        inclusive, ``end`` exclusive, so a reversed range (``start >= end``)
        is empty.
        """
        self._require_open()
        if limit is not None and limit <= 0:
            return
        with self._lock:
            tables = list(self._tables)
            # Materialise the memtable's window: the live memtable keeps
            # mutating (and is cleared wholesale by a flush) while this
            # iterator is parked, and a lazy view over it would blow up.
            memtable_entries = list(self._memtable.range(start, end))

        # Tag every source with a rank (higher = newer) and merge on
        # (key, -rank): for a duplicated key the newest version surfaces
        # first and the older ones are skipped.  Ranks are distinct, so the
        # merge never compares values.
        def tagged(source, rank: int):
            for key, value in source:
                yield key, -rank, value

        sources = [
            tagged(table.range(start, end), rank)
            for rank, table in enumerate(tables)  # oldest first
        ]
        sources.append(tagged(iter(memtable_entries), len(tables)))
        yielded = 0
        previous: str | None = None
        for key, _, value in heapq.merge(*sources):
            if key == previous:
                continue
            previous = key
            if value is None:
                continue
            yield key, value
            yielded += 1
            if limit is not None and yielded >= limit:
                return

    # ------------------------------------------------------------- compaction

    def _pick_compaction(self) -> tuple[int, list[SSTable]] | None:
        """The shallowest level holding ``compaction_trigger``-many tables.

        Caller must hold ``self._lock``.  Returns ``(level, run)`` where the
        run is every table currently at that level (tiered whole-level
        merges), or ``None`` when no level is over the trigger.
        """
        by_level: dict[int, list[SSTable]] = {}
        for table in self._tables:
            by_level.setdefault(table.level, []).append(table)
        for level in sorted(by_level):
            if len(by_level[level]) >= self.compaction_trigger:
                return level, by_level[level]
        return None

    def _compact_once(self) -> bool:
        """Run one scheduled merge; returns whether any work was done."""
        if self._closed:
            return False
        with self._compact_mutex:
            with self._lock:
                pick = self._pick_compaction()
                if pick is None:
                    return False
                level, run = pick
                drop_tombstones = run[0] is self._tables[0]
            self._merge_run(run, run[-1].table_id, level + 1, drop_tombstones)
        return True

    def compact(self) -> None:
        """Merge every live SSTable into one table at the deepest level.

        The explicit full merge: keeps the newest version of every key and
        always drops tombstones (nothing can hide below a full merge).
        Safe to call while the background scheduler runs — merges are
        serialised — and a no-op with fewer than two tables.
        """
        self._require_open()
        with self._compact_mutex:
            with self._lock:
                if len(self._tables) <= 1:
                    return
                run = list(self._tables)
                out_id = run[-1].table_id
                out_level = max(table.level for table in run) + 1
            self._merge_run(run, out_id, out_level, drop_tombstones=True)

    def _merge_run(
        self,
        run: list[SSTable],
        out_id: int,
        out_level: int,
        drop_tombstones: bool,
    ) -> None:
        """Streaming k-way merge of ``run`` into one table at ``out_level``.

        Caller must hold ``_compact_mutex`` (and **not** ``_lock``).  Memory
        stays O(block): entries stream from the inputs' block iterators
        through :func:`write_sstable_stream`.  The output is published
        atomically *before* the inputs are retired, so a crash anywhere in
        between recovers by quarantining whichever side is superseded.
        """
        policy = self._policy_for_level(out_level)
        if (
            self._compaction_hook is not None
            and policy.policy_kind == POLICY_KIND_RECORD
        ):
            # Compaction-aware retraining: the backend may install a fresh
            # model epoch now, so the cold rewrite below encodes against it
            # and the old epoch's last block references retire with the
            # inputs.  Advisory — a failed retrain must not fail the merge.
            try:
                self._compaction_hook(out_level)
            except Exception:
                pass
        sync = self.sync_mode != "none"
        path = self.directory / f"sstable-{out_id:06d}-{out_level:03d}.sst"
        tmp_path = path.with_name(path.name + ".tmp")
        info = write_sstable_stream(
            tmp_path,
            self._merge_entries(run, drop_tombstones),
            policy,
            approximate_entries=sum(table.entry_count for table in run),
            block_bytes=self.block_bytes,
            sync=sync,
        )
        output: SSTable | None = None
        if info is not None:
            os.replace(tmp_path, path)
            if sync:
                fsync_directory(self.directory)
            output = SSTable(path, policy)
            output.table_id = out_id
            output.level = out_level
            policy.acquire_block_epochs(output.block_epochs())
        with self._lock:
            position = self._tables.index(run[0])
            assert self._tables[position : position + len(run)] == run
            self._tables[position : position + len(run)] = (
                [output] if output is not None else []
            )
            self._compactions += 1
            self._stall_condition.notify_all()
        for table in run:
            table.policy.release_block_epochs(table.block_epochs())
            table.retire()
        if sync:
            fsync_directory(self.directory)

    @staticmethod
    def _merge_entries(
        run: Sequence[SSTable], drop_tombstones: bool
    ) -> Iterable[tuple[str, str | None]]:
        """Newest-version-wins merge of the run's entries, streaming."""

        def tagged(table: SSTable, rank: int):
            for key, value in table.scan():
                yield key, -rank, value

        sources = [tagged(table, rank) for rank, table in enumerate(run)]
        previous: str | None = None
        for key, _, value in heapq.merge(*sources):
            if key == previous:
                continue
            previous = key
            if value is None and drop_tombstones:
                continue
            yield key, value

    # ------------------------------------------------------------ measurement

    def stats(self) -> EngineStats:
        """Current engine statistics (space usage, table counts, flush/compaction counters).

        O(tables): each table's logical value bytes come from its STB3
        footer (legacy STB2 tables pay one lazy scan, cached), so this no
        longer decodes every block of the store per call.
        """
        self._require_open()
        with self._lock:
            tables = list(self._tables)
            memtable_entries = len(self._memtable)
            memtable_bytes = self._memtable.approximate_bytes
            memtable_values = [value for _, value in self._memtable.items()]
            flushes = self._flushes
            compactions = self._compactions
        logical = sum(table.logical_value_bytes for table in tables)
        for value in memtable_values:
            if value is not None:
                logical += len(value.encode("utf-8"))
        return EngineStats(
            policy=self.policy.name,
            memtable_entries=memtable_entries,
            memtable_bytes=memtable_bytes,
            sstable_count=len(tables),
            sstable_file_bytes=sum(table.file_bytes for table in tables),
            logical_value_bytes=logical,
            flushes=flushes,
            compactions=compactions,
        )

    def disk_stats(self) -> "DiskStats":
        """Cheap durable-footprint stats for metric scrapes.

        Unlike :meth:`stats` this never scans table contents — it is sized for
        a per-scrape call on the serving path (file-size sums plus the WAL's
        in-memory counters and the compaction/stall gauges).
        """
        self._require_open()
        with self._lock:
            tables = list(self._tables)
            compactions = self._compactions
            stall_seconds = self._stall_seconds
        by_level: dict[int, list[SSTable]] = {}
        for table in tables:
            by_level.setdefault(table.level, []).append(table)
        pending = sum(
            table.file_bytes
            for level_tables in by_level.values()
            if len(level_tables) >= self.compaction_trigger
            for table in level_tables
        )
        return DiskStats(
            sstable_count=len(tables),
            sstable_file_bytes=sum(table.file_bytes for table in tables),
            wal_bytes=self._wal.size_bytes,
            wal_fsyncs=self._wal.fsyncs,
            wal_fsync_seconds=self._wal.fsync_seconds,
            levels=len(by_level),
            pending_compaction_bytes=pending,
            compaction_stall_seconds=stall_seconds,
            compactions=compactions,
        )

    def measure_lookups(self, keys: Sequence[str]) -> LookupTiming:
        """Time point lookups for ``keys``."""
        self._require_open()
        hits = 0
        started = time.perf_counter()
        for key in keys:
            if self.get(key) is not None:
                hits += 1
        elapsed = time.perf_counter() - started
        return LookupTiming(lookups=len(keys), hits=hits, elapsed_seconds=elapsed)

    # ---------------------------------------------------------------- closing

    def sync(self) -> None:
        """Hard durability barrier: fsync the write-ahead log regardless of mode."""
        self._require_open()
        self._wal.sync()

    def close(self) -> None:
        """Flush pending writes, stop the compactor, release the WAL.

        Table descriptors are left to garbage collection on purpose: a scan
        iterator handed out before ``close`` stays readable to exhaustion.
        """
        if self._closed:
            return
        if len(self._memtable):
            self.flush()
        if self._scheduler is not None:
            self._scheduler.close()
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "LSMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
