"""A log-structured merge-tree storage engine with pluggable value compression.

This is the reproduction's stand-in for the RocksDB/LevelDB-class engines the
paper's introduction targets: engines that compress stored data either in
blocks (general-purpose codecs) or — after integrating PBC — per record.  The
engine combines

* a write-ahead log (:mod:`repro.lsm.wal`) for durability,
* an in-memory memtable (:mod:`repro.lsm.memtable`) absorbing writes,
* immutable SSTables (:mod:`repro.lsm.sstable`) produced by flushes, and
* a size-tiered compaction that merges all tables once their count crosses a
  threshold, keeping the newest version of every key and dropping tombstones.

Reads consult the memtable first, then SSTables newest-first, so the engine has
standard LSM read/write semantics.  The storage policy decides how values are
compressed inside SSTables, which is what the LSM integration benchmark varies.

Durability (docs/ARCHITECTURE.md, "Durability"): what an acknowledged write
survives is the WAL ``sync_mode`` policy (``"none"`` / ``"flush"`` /
``"fsync"``), and SSTables are **published atomically** — written to a
``*.sst.tmp`` sibling, fsynced, ``os.replace``-d into place, directory
fsynced — so recovery can never open a torn table.  A leftover ``*.tmp`` from
a crashed flush or compaction is quarantined on reopen (its contents are
still covered by the WAL or by the surviving old tables); a corrupted
published ``*.sst`` raises a typed :class:`~repro.exceptions.StoreError`
instead of garbage reads.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.exceptions import StoreError
from repro.ioutil import fsync_directory
from repro.lsm.memtable import MemTable
from repro.lsm.sstable import PlainPolicy, SSTable, StoragePolicy, write_sstable
from repro.lsm.wal import OP_DELETE, OP_PUT, SYNC_MODES, WriteAheadLog

#: Subdirectory where recovery parks leftover ``*.tmp`` files (never deleted:
#: they are evidence of a crash, and deleting data is not recovery's call).
QUARANTINE_DIR = "quarantine"


@dataclass
class EngineStats:
    """Point-in-time statistics of an :class:`LSMEngine`."""

    policy: str
    memtable_entries: int
    memtable_bytes: int
    sstable_count: int
    sstable_file_bytes: int
    logical_value_bytes: int
    flushes: int
    compactions: int

    @property
    def space_ratio(self) -> float:
        """Physical bytes (SSTable files + memtable) over logical value bytes.

        ``logical_value_bytes`` counts memtable values as well as SSTable
        values (the PR-5 bugfix: counting only SSTable values made the ratio
        report ~1.0 — 0/0 — while every byte sat uncompressed in the
        memtable), so the numerator includes the memtable's footprint too.
        After a flush the memtable terms are zero and this is exactly the
        on-disk ratio it always was.
        """
        if self.logical_value_bytes == 0:
            return 1.0
        return (self.sstable_file_bytes + self.memtable_bytes) / self.logical_value_bytes


@dataclass(frozen=True)
class DiskStats:
    """Cheap durable-footprint counters (no table scan; see ``disk_stats``)."""

    sstable_count: int
    sstable_file_bytes: int
    wal_bytes: int
    wal_fsyncs: int
    wal_fsync_seconds: float

    @property
    def bytes_on_disk(self) -> int:
        """Total durable footprint: SSTable files plus the live WAL."""
        return self.sstable_file_bytes + self.wal_bytes


@dataclass
class LookupTiming:
    """Outcome of a point-lookup throughput measurement."""

    lookups: int
    hits: int
    elapsed_seconds: float

    @property
    def lookups_per_second(self) -> float:
        """Point lookups per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.lookups / self.elapsed_seconds


class LSMEngine:
    """A single-node LSM key-value engine with pluggable SSTable compression."""

    def __init__(
        self,
        directory: str | Path,
        policy: StoragePolicy | None = None,
        memtable_bytes: int = 64 * 1024,
        block_bytes: int = 4096,
        compaction_trigger: int = 4,
        sync_mode: str = "flush",
        fsync_interval_bytes: int = 0,
    ) -> None:
        if memtable_bytes < 1:
            raise StoreError("memtable size threshold must be positive")
        if compaction_trigger < 2:
            raise StoreError("compaction trigger must be at least 2")
        if sync_mode not in SYNC_MODES:
            raise StoreError(f"unknown sync_mode {sync_mode!r}; choose from {SYNC_MODES}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.policy = policy if policy is not None else PlainPolicy()
        self.memtable_bytes = memtable_bytes
        self.block_bytes = block_bytes
        self.compaction_trigger = compaction_trigger
        self.sync_mode = sync_mode
        self._memtable = MemTable()
        self._wal = WriteAheadLog(
            self.directory / "wal.log",
            sync_mode=sync_mode,
            fsync_interval_bytes=fsync_interval_bytes,
        )
        self._tables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        self._flushes = 0
        self._compactions = 0
        self._closed = False
        self._recover()

    # --------------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Re-open existing SSTables and replay the write-ahead log.

        Leftover ``*.tmp`` files are a crashed flush/compaction that never
        reached its ``os.replace`` — their contents are still covered by the
        WAL (flush) or by the surviving pre-compaction tables (compact), so
        they are quarantined, not opened and not deleted.  A published
        ``*.sst`` that fails to open is corruption from outside the engine's
        crash model and raises the typed :class:`StoreError` from the reader.
        """
        for tmp_path in sorted(self.directory.glob("*.tmp")):
            self._quarantine(tmp_path)
        for path in sorted(self.directory.glob("sstable-*.sst")):
            self._tables.append(SSTable(path, self.policy))
            table_id = int(path.stem.split("-")[1])
            self._next_table_id = max(self._next_table_id, table_id + 1)
        for op, key, value in self._wal.replay():
            if op == OP_PUT:
                self._memtable.put(key, value)
            elif op == OP_DELETE:
                self._memtable.delete(key)

    def _quarantine(self, path: Path) -> None:
        quarantine = self.directory / QUARANTINE_DIR
        quarantine.mkdir(exist_ok=True)
        target = quarantine / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine / f"{path.name}.{suffix}"
        os.replace(path, target)

    def _require_open(self) -> None:
        if self._closed:
            raise StoreError("engine is closed")

    # ------------------------------------------------------------------ write

    def put(self, key: str, value: str) -> None:
        """Insert or overwrite ``key``."""
        self._require_open()
        self._wal.append_put(key, value)
        self._memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: str) -> None:
        """Delete ``key`` (a no-op if it never existed)."""
        self._require_open()
        self._wal.append_delete(key)
        self._memtable.delete(key)
        self._maybe_flush()

    def put_many(self, items: Sequence[tuple[str, str]]) -> None:
        """Bulk insert."""
        for key, value in items:
            self.put(key, value)

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes >= self.memtable_bytes:
            self.flush()

    def _publish_sstable(self, entries: Sequence[tuple[str, str | None]]) -> SSTable:
        """Atomically publish ``entries`` as the next numbered SSTable.

        Write to ``*.sst.tmp``, fsync the bytes, ``os.replace`` onto the final
        name, fsync the directory: a crash at any point leaves either no table
        (a quarantinable tmp) or a complete one — never a torn ``*.sst``.
        The fsyncs are skipped in ``sync_mode="none"`` (the throughput
        baseline); the atomic rename is not.
        """
        sync = self.sync_mode != "none"
        path = self.directory / f"sstable-{self._next_table_id:06d}.sst"
        tmp_path = path.with_name(path.name + ".tmp")
        write_sstable(tmp_path, entries, self.policy, block_bytes=self.block_bytes, sync=sync)
        os.replace(tmp_path, path)
        if sync:
            fsync_directory(self.directory)
        self._next_table_id += 1
        return SSTable(path, self.policy)

    def flush(self) -> None:
        """Write the memtable to a new SSTable and reset the write-ahead log.

        Ordering is the recovery contract: the table is durably published
        *before* the WAL is truncated, so a crash in between replays WAL
        records whose effects the new table already holds — idempotent —
        rather than losing records covered by neither.
        """
        self._require_open()
        if len(self._memtable) == 0:
            return
        self._tables.append(self._publish_sstable(list(self._memtable.items())))
        self._memtable.clear()
        self._wal.reset()
        self._flushes += 1
        if len(self._tables) >= self.compaction_trigger:
            self.compact()

    # ------------------------------------------------------------------- read

    def get(self, key: str) -> str | None:
        """Point lookup; returns ``None`` for missing or deleted keys."""
        self._require_open()
        found, value = self._memtable.get(key)
        if found:
            return value
        for table in reversed(self._tables):
            found, value = table.get(key)
            if found:
                return value
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def scan(
        self,
        start: str | None = None,
        end: str | None = None,
        limit: int | None = None,
    ) -> Iterator[tuple[str, str]]:
        """Live entries with ``start <= key < end`` in key order, newest version wins.

        A true k-way merge over per-table range iterators (which seek via the
        block index) and the memtable — nothing is materialised, so a small
        ``limit`` over a large store reads only the blocks it touches before
        short-circuiting.  Tombstones shadow older versions and are never
        yielded; ``limit`` counts live results.  ``start`` is inclusive,
        ``end`` exclusive, so a reversed range (``start >= end``) is empty.
        """
        self._require_open()
        if limit is not None and limit <= 0:
            return
        # Tag every source with a rank (higher = newer) and merge on
        # (key, -rank): for a duplicated key the newest version surfaces
        # first and the older ones are skipped.  Ranks are distinct, so the
        # merge never compares values.
        def tagged(source, rank: int):
            for key, value in source:
                yield key, -rank, value

        sources = [
            tagged(table.range(start, end), rank)
            for rank, table in enumerate(self._tables)  # oldest first
        ]
        sources.append(tagged(self._memtable.range(start, end), len(self._tables)))
        yielded = 0
        previous: str | None = None
        for key, _, value in heapq.merge(*sources):
            if key == previous:
                continue
            previous = key
            if value is None:
                continue
            yield key, value
            yielded += 1
            if limit is not None and yielded >= limit:
                return

    # ------------------------------------------------------------- compaction

    def compact(self) -> None:
        """Merge every SSTable into one, keeping newest versions and dropping tombstones."""
        self._require_open()
        if len(self._tables) <= 1:
            return
        merged: dict[str, str | None] = {}
        for table in self._tables:  # oldest first
            for key, value in table.scan():
                merged[key] = value
        live_entries = [(key, value) for key, value in sorted(merged.items()) if value is not None]
        old_paths = [table.path for table in self._tables]
        self._tables = []
        # Publish the merged table (it gets the highest id, so recovery after
        # a crash mid-cleanup sees it as newest and the surviving old tables
        # merge beneath it) before unlinking any input.
        if live_entries:
            self._tables.append(self._publish_sstable(live_entries))
        for path in old_paths:
            path.unlink(missing_ok=True)
        if self.sync_mode != "none":
            fsync_directory(self.directory)
        self._compactions += 1

    # ------------------------------------------------------------ measurement

    def stats(self) -> EngineStats:
        """Current engine statistics (space usage, table counts, flush/compaction counters)."""
        self._require_open()
        logical = 0
        for table in self._tables:
            for _, value in table.scan():
                if value is not None:
                    logical += len(value.encode("utf-8"))
        for _, value in self._memtable.items():
            if value is not None:
                logical += len(value.encode("utf-8"))
        return EngineStats(
            policy=self.policy.name,
            memtable_entries=len(self._memtable),
            memtable_bytes=self._memtable.approximate_bytes,
            sstable_count=len(self._tables),
            sstable_file_bytes=sum(table.file_bytes for table in self._tables),
            logical_value_bytes=logical,
            flushes=self._flushes,
            compactions=self._compactions,
        )

    def disk_stats(self) -> "DiskStats":
        """Cheap durable-footprint stats for metric scrapes.

        Unlike :meth:`stats` this never scans table contents — it is sized for
        a per-scrape call on the serving path (file-size sums plus the WAL's
        in-memory fsync counters).
        """
        self._require_open()
        return DiskStats(
            sstable_count=len(self._tables),
            sstable_file_bytes=sum(table.file_bytes for table in self._tables),
            wal_bytes=self._wal.size_bytes,
            wal_fsyncs=self._wal.fsyncs,
            wal_fsync_seconds=self._wal.fsync_seconds,
        )

    def measure_lookups(self, keys: Sequence[str]) -> LookupTiming:
        """Time point lookups for ``keys``."""
        self._require_open()
        hits = 0
        started = time.perf_counter()
        for key in keys:
            if self.get(key) is not None:
                hits += 1
        elapsed = time.perf_counter() - started
        return LookupTiming(lookups=len(keys), hits=hits, elapsed_seconds=elapsed)

    # ---------------------------------------------------------------- closing

    def sync(self) -> None:
        """Hard durability barrier: fsync the write-ahead log regardless of mode."""
        self._require_open()
        self._wal.sync()

    def close(self) -> None:
        """Flush pending writes and release the write-ahead log."""
        if self._closed:
            return
        if len(self._memtable):
            self.flush()
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "LSMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
