"""Write-ahead log of the LSM engine.

Every mutation is appended to the log before it is applied to the memtable, so
an engine that crashes before flushing can rebuild the memtable on restart.
Each entry carries a CRC32 of its body; replay stops at the first corrupt or
truncated entry, which models the standard "torn tail" recovery behaviour of
LevelDB/RocksDB logs.

What an *acknowledged* append guarantees is the log's ``sync_mode`` policy
(docs/ARCHITECTURE.md, "Durability"):

* ``"none"`` — records may sit in Python's userspace buffer; a process kill
  (SIGKILL) can lose every buffered record.  The throughput baseline.
* ``"flush"`` (default) — every append drains the userspace buffer into the
  kernel, so a **process** crash loses nothing; a machine/power crash can
  still lose the kernel's page cache.  This is the mode the original module
  docstring promised and — the PR-5 bugfix — never actually delivered: records
  stayed in the userspace buffer and an acknowledged ``put`` vanished on kill.
* ``"fsync"`` — every append additionally ``os.fsync``-es the file, so even a
  machine crash loses nothing acknowledged.  ``fsync_interval_bytes > 0``
  relaxes this to group commit: at most that many appended bytes ride between
  fsyncs (the unsynced tail a machine crash may lose).

``sync()`` is always the hard barrier (flush + ``os.fsync``) regardless of
mode.
"""

from __future__ import annotations

import os
import time
import zlib
from pathlib import Path
from typing import Iterator, Sequence

from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import StoreError
from repro.ioutil import fsync_directory

#: Operation tags used in log entries.
OP_PUT = 1
OP_DELETE = 2

#: Accepted per-append durability policies, weakest to strongest.
SYNC_MODES = ("none", "flush", "fsync")


def _encode_record(op: int, key: str, value: str) -> bytes:
    """One log record: uvarint body length, CRC32 of the body, body."""
    key_bytes = key.encode("utf-8")
    value_bytes = value.encode("utf-8")
    body = bytearray()
    body.append(op)
    body += encode_uvarint(len(key_bytes))
    body += key_bytes
    body += encode_uvarint(len(value_bytes))
    body += value_bytes
    checksum = zlib.crc32(bytes(body))
    return encode_uvarint(len(body)) + checksum.to_bytes(4, "big") + bytes(body)


class WriteAheadLog:
    """Append-only log of ``put`` / ``delete`` operations."""

    def __init__(
        self,
        path: str | Path,
        sync_mode: str = "flush",
        fsync_interval_bytes: int = 0,
    ) -> None:
        if sync_mode not in SYNC_MODES:
            raise StoreError(f"unknown sync_mode {sync_mode!r}; choose from {SYNC_MODES}")
        if fsync_interval_bytes < 0:
            raise StoreError("fsync_interval_bytes must be >= 0")
        self.path = Path(path)
        self.sync_mode = sync_mode
        self.fsync_interval_bytes = fsync_interval_bytes
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._unsynced_bytes = 0
        #: fsync barriers taken and their cumulative wall time, for the
        #: ``repro_shard_wal_fsync*`` metrics (process-lifetime, not replayed).
        self.fsyncs = 0
        self.fsync_seconds = 0.0

    def _fsync(self) -> None:
        started = time.perf_counter()
        os.fsync(self._file.fileno())
        self.fsync_seconds += time.perf_counter() - started
        self.fsyncs += 1
        self._unsynced_bytes = 0

    # ------------------------------------------------------------------ write

    def append_put(self, key: str, value: str) -> None:
        """Log an insert/overwrite."""
        self._append(OP_PUT, key, value)

    def append_delete(self, key: str) -> None:
        """Log a deletion."""
        self._append(OP_DELETE, key, "")

    def append_many(self, records: Sequence[tuple[int, str, str]]) -> None:
        """Log a batch of ``(op, key, value)`` records with **one** write.

        The batch is encoded into a single buffer, written with one syscall
        and flushed/fsynced once, so an N-record ``put_many`` pays one
        durability barrier instead of N.  The ``sync_mode`` guarantee is
        unchanged — the batch is not acknowledged until the whole buffer has
        reached the mode's durability point — and each record still carries
        its own CRC, so a torn batch replays as a valid prefix.
        """
        if not records:
            return
        if self._file.closed:
            raise StoreError("write-ahead log is closed")
        buffer = bytearray()
        for op, key, value in records:
            buffer += _encode_record(op, key, value)
        self._file.write(bytes(buffer))
        self._after_write(len(buffer))

    def _append(self, op: int, key: str, value: str) -> None:
        if self._file.closed:
            raise StoreError("write-ahead log is closed")
        record = _encode_record(op, key, value)
        self._file.write(record)
        self._after_write(len(record))

    def _after_write(self, written_bytes: int) -> None:
        """Apply the ``sync_mode`` durability policy to freshly written bytes."""
        if self.sync_mode == "none":
            return
        self._file.flush()
        if self.sync_mode == "fsync":
            self._unsynced_bytes += written_bytes
            if self.fsync_interval_bytes == 0 or self._unsynced_bytes >= self.fsync_interval_bytes:
                self._fsync()

    def flush(self) -> None:
        """Drain the userspace buffer into the kernel (survives a process kill)."""
        if not self._file.closed:
            self._file.flush()

    def sync(self) -> None:
        """Hard durability barrier: flush and ``os.fsync`` regardless of mode."""
        if not self._file.closed:
            self._file.flush()
            self._fsync()

    # ------------------------------------------------------------------- read

    def replay(self) -> Iterator[tuple[int, str, str]]:
        """Yield ``(op, key, value)`` for every intact entry, oldest first.

        Replay stops silently at the first truncated or corrupt entry: the tail
        of a log written during a crash is expected to be damaged and everything
        before it is still valid.
        """
        self.flush()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        offset = 0
        total = len(data)
        while offset < total:
            try:
                body_length, body_start = decode_uvarint(data, offset)
            except Exception:
                return
            checksum_end = body_start + 4
            body_end = checksum_end + body_length
            if body_end > total:
                return
            expected_checksum = int.from_bytes(data[body_start:checksum_end], "big")
            body = data[checksum_end:body_end]
            if zlib.crc32(body) != expected_checksum:
                return
            op = body[0]
            key_length, position = decode_uvarint(body, 1)
            key = body[position : position + key_length].decode("utf-8")
            position += key_length
            value_length, position = decode_uvarint(body, position)
            value = body[position : position + value_length].decode("utf-8")
            yield op, key, value
            offset = body_end

    # ------------------------------------------------------------ maintenance

    def reset(self) -> None:
        """Truncate the log (after the memtable it protects has been flushed).

        In ``"fsync"`` mode the truncation itself is fsynced (file and
        directory): a machine crash right after a flush must not resurrect the
        pre-flush log over the already-published SSTable's directory state.
        """
        if not self._file.closed:
            self._file.close()
        self._file = open(self.path, "wb")
        if self.sync_mode == "fsync":
            self._fsync()
        self._file.close()
        self._file = open(self.path, "ab")
        self._unsynced_bytes = 0
        if self.sync_mode == "fsync":
            fsync_directory(self.path.parent)

    def close(self) -> None:
        """Close the underlying file (fsyncing first in ``"fsync"`` mode)."""
        if not self._file.closed:
            self._file.flush()
            if self.sync_mode == "fsync":
                self._fsync()
            self._file.close()

    @property
    def size_bytes(self) -> int:
        """Current size of the log file."""
        self.flush()
        return self.path.stat().st_size if self.path.exists() else 0
