"""Write-ahead log of the LSM engine — a thin wrapper over the operation log's
:class:`~repro.oplog.disk.DiskSink`.

The file mechanics (append, durability policy, torn-tail replay, truncate)
moved to :mod:`repro.oplog.disk` in the operation-log refactor; this module
keeps the WAL's historical API and adds the LSN-aware one:

* the legacy methods (:meth:`WriteAheadLog.append_put` /
  :meth:`~WriteAheadLog.append_delete` / :meth:`~WriteAheadLog.append_many`,
  and :meth:`~WriteAheadLog.replay`'s ``(op, key, value)`` tuples) still
  write and read the pre-LSN record format, byte-identical to old files —
  they exist for direct-WAL callers and the mixed-version tests;
* as a :class:`~repro.oplog.sink.LogSink`, :meth:`WriteAheadLog.append`
  accepts sequenced :class:`~repro.oplog.record.OpRecord`\\ s from the
  engine's :class:`~repro.oplog.log.OperationLog`, and
  :meth:`~WriteAheadLog.replay_records` yields them back as a gap-free LSN
  prefix (legacy records replay with synthesised LSNs, so an old file
  reopens seamlessly under the new contract);
* :meth:`~WriteAheadLog.reset` takes the flushed prefix's last LSN and
  stamps it into the fresh file as an ``OP_CHECKPOINT`` record, so a shard
  never re-issues an LSN across flush/reopen.

What an *acknowledged* append guarantees is the ``sync_mode`` policy
(``"none"`` / ``"flush"`` / ``"fsync"``, plus ``fsync_interval_bytes`` group
commit) documented on :class:`~repro.oplog.disk.DiskSink` and in
docs/ARCHITECTURE.md ("Durability").  ``sync()`` is always the hard barrier
(flush + ``os.fsync``) regardless of mode.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

from repro.oplog.disk import SYNC_MODES, DiskSink
from repro.oplog.record import (
    OP_DELETE,
    OP_PUT,
    OpRecord,
    encode_legacy_record,
)
from repro.oplog.sink import LogSink

__all__ = ["OP_DELETE", "OP_PUT", "SYNC_MODES", "WriteAheadLog"]


class WriteAheadLog(LogSink):
    """Append-only log of ``put`` / ``delete`` operations (LSN-aware)."""

    def __init__(
        self,
        path: str | Path,
        sync_mode: str = "flush",
        fsync_interval_bytes: int = 0,
    ) -> None:
        self._sink = DiskSink(
            path, sync_mode=sync_mode, fsync_interval_bytes=fsync_interval_bytes
        )

    # ------------------------------------------------------------ sink facade

    @property
    def path(self) -> Path:
        return self._sink.path

    @property
    def sync_mode(self) -> str:
        return self._sink.sync_mode

    @property
    def fsync_interval_bytes(self) -> int:
        return self._sink.fsync_interval_bytes

    @property
    def fsyncs(self) -> int:
        """fsync barriers taken (process-lifetime, not replayed)."""
        return self._sink.fsyncs

    @property
    def fsync_seconds(self) -> float:
        """Cumulative wall time spent inside fsync barriers."""
        return self._sink.fsync_seconds

    # ------------------------------------------------------------------ write

    def append(self, records: Sequence[OpRecord]) -> None:
        """LogSink entry point: write sequenced LSN-stamped records (batched:
        one buffer, one durability barrier for the whole batch)."""
        self._sink.append(records)

    def append_put(self, key: str, value: str) -> None:
        """Log an insert/overwrite in the legacy (pre-LSN) record format."""
        self._sink.append_raw(encode_legacy_record(OP_PUT, key, value))

    def append_delete(self, key: str) -> None:
        """Log a deletion in the legacy (pre-LSN) record format."""
        self._sink.append_raw(encode_legacy_record(OP_DELETE, key, ""))

    def append_many(self, records: Sequence[tuple[int, str, str]]) -> None:
        """Log a batch of legacy ``(op, key, value)`` records with **one** write.

        The batch is encoded into a single buffer, written with one syscall
        and flushed/fsynced once, so an N-record batch pays one durability
        barrier instead of N.  Each record still carries its own CRC, so a
        torn batch replays as a valid prefix.
        """
        if not records:
            return
        buffer = bytearray()
        for op, key, value in records:
            buffer += encode_legacy_record(op, key, value)
        self._sink.append_raw(bytes(buffer))

    def flush(self) -> None:
        """Drain the userspace buffer into the kernel (survives a process kill)."""
        self._sink.flush()

    def sync(self) -> None:
        """Hard durability barrier: flush and ``os.fsync`` regardless of mode."""
        self._sink.sync()

    # ------------------------------------------------------------------- read

    def replay_records(self, start_lsn: int = 0) -> Iterator[OpRecord]:
        """Every intact record, oldest first, as a gap-free LSN prefix.

        Stops at the first torn/corrupt entry or LSN gap (see
        :func:`repro.oplog.record.iter_records`); legacy records come back
        with synthesised contiguous LSNs, checkpoints with the LSN the
        truncated prefix had reached.
        """
        return self._sink.replay(start_lsn=start_lsn)

    def replay(self) -> Iterator[tuple[int, str, str]]:
        """Yield ``(op, key, value)`` for every intact mutation, oldest first.

        The historical 3-tuple API: checkpoint control records are skipped
        and values are decoded to text.  Replay stops silently at the first
        truncated or corrupt entry — the torn tail of a crash — and
        everything before it is still valid.
        """
        for record in self.replay_records():
            if record.checkpoint():
                continue
            yield record.op, record.key, record.value.decode("utf-8")

    # ------------------------------------------------------------ maintenance

    def reset(self, checkpoint_lsn: int = 0) -> None:
        """Truncate the log (after the memtable it protects has been flushed).

        ``checkpoint_lsn`` is the LSN the flushed prefix reached; when
        positive, the fresh file opens with an ``OP_CHECKPOINT`` record
        carrying it, so recovery resumes the shard's sequence instead of
        re-issuing LSNs.  In ``"fsync"`` mode the truncation is fsynced
        (file and directory): a machine crash right after a flush must not
        resurrect the pre-flush log over the already-published SSTable's
        directory state.
        """
        self._sink.reset(checkpoint_lsn=checkpoint_lsn)

    def close(self) -> None:
        """Close the underlying file (fsyncing first in ``"fsync"`` mode)."""
        self._sink.close()

    @property
    def size_bytes(self) -> int:
        """Current size of the log file."""
        return self._sink.size_bytes
