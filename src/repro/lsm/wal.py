"""Write-ahead log of the LSM engine.

Every mutation is appended to the log before it is applied to the memtable, so
an engine that crashes before flushing can rebuild the memtable on restart.
Each entry carries a CRC32 of its body; replay stops at the first corrupt or
truncated entry, which models the standard "torn tail" recovery behaviour of
LevelDB/RocksDB logs.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Iterator

from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import StoreError

#: Operation tags used in log entries.
OP_PUT = 1
OP_DELETE = 2


class WriteAheadLog:
    """Append-only log of ``put`` / ``delete`` operations."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")

    # ------------------------------------------------------------------ write

    def append_put(self, key: str, value: str) -> None:
        """Log an insert/overwrite."""
        self._append(OP_PUT, key, value)

    def append_delete(self, key: str) -> None:
        """Log a deletion."""
        self._append(OP_DELETE, key, "")

    def _append(self, op: int, key: str, value: str) -> None:
        if self._file.closed:
            raise StoreError("write-ahead log is closed")
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        body = bytearray()
        body.append(op)
        body += encode_uvarint(len(key_bytes))
        body += key_bytes
        body += encode_uvarint(len(value_bytes))
        body += value_bytes
        checksum = zlib.crc32(bytes(body))
        record = encode_uvarint(len(body)) + checksum.to_bytes(4, "big") + bytes(body)
        self._file.write(record)

    def sync(self) -> None:
        """Flush buffered writes to the operating system."""
        if not self._file.closed:
            self._file.flush()

    # ------------------------------------------------------------------- read

    def replay(self) -> Iterator[tuple[int, str, str]]:
        """Yield ``(op, key, value)`` for every intact entry, oldest first.

        Replay stops silently at the first truncated or corrupt entry: the tail
        of a log written during a crash is expected to be damaged and everything
        before it is still valid.
        """
        self.sync()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        offset = 0
        total = len(data)
        while offset < total:
            try:
                body_length, body_start = decode_uvarint(data, offset)
            except Exception:
                return
            checksum_end = body_start + 4
            body_end = checksum_end + body_length
            if body_end > total:
                return
            expected_checksum = int.from_bytes(data[body_start:checksum_end], "big")
            body = data[checksum_end:body_end]
            if zlib.crc32(body) != expected_checksum:
                return
            op = body[0]
            key_length, position = decode_uvarint(body, 1)
            key = body[position : position + key_length].decode("utf-8")
            position += key_length
            value_length, position = decode_uvarint(body, position)
            value = body[position : position + value_length].decode("utf-8")
            yield op, key, value
            offset = body_end

    # ------------------------------------------------------------ maintenance

    def reset(self) -> None:
        """Truncate the log (after the memtable it protects has been flushed)."""
        if not self._file.closed:
            self._file.close()
        self._file = open(self.path, "wb")
        self._file.close()
        self._file = open(self.path, "ab")

    def close(self) -> None:
        """Close the underlying file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    @property
    def size_bytes(self) -> int:
        """Current size of the log file."""
        self.sync()
        return self.path.stat().st_size if self.path.exists() else 0
