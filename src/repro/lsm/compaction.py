"""Background compaction scheduling for the LSM engine.

The paper's target engines (RocksDB/LevelDB-class) never merge tables inside
``put()``: flushes make L0 tables, a background thread merges them down the
level hierarchy, and the write path is only ever *throttled* — never parked
for a whole merge — when compaction falls behind.  This module supplies the
two pieces the engine composes:

* :class:`CompactionConfig` — the trigger/throttle policy knobs: how many
  tables a level may accumulate before it is merged into the next level
  (``engine.compaction_trigger``), and the two L0 **admission-control**
  watermarks modelled on RocksDB's ``level0_slowdown_writes_trigger`` /
  ``level0_stop_writes_trigger``:

  - at ``slowdown_tables`` L0 tables each write pays a tiny sleep, shedding
    write throughput smoothly so the compactor can catch up;
  - at ``stall_tables`` writes block on a condition variable until the
    compactor has merged L0 back below the watermark.

* :class:`CompactionScheduler` — the dedicated daemon thread.  It sleeps on
  an event, is notified after every flush (and by throttled writers), and
  drains the engine's compaction picks one streaming merge at a time.  A
  crashed merge records the error and wakes stalled writers, who fall back
  to inline compaction instead of deadlocking on a dead thread.

Consistency does not depend on the scheduler: every merge publishes its
output atomically before retiring its inputs, so a SIGKILL at any point
leaves either a quarantinable ``*.tmp`` or a complete output whose inputs
recovery detects as superseded (see ``LSMEngine._recover``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import StoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lsm.engine import LSMEngine


@dataclass(frozen=True)
class CompactionConfig:
    """Admission-control and scheduling knobs for background compaction.

    ``slowdown_tables`` / ``stall_tables`` default (``None``) to 2x and 4x
    the engine's ``compaction_trigger``, so a default engine slows writes at
    8 L0 tables and stalls them at 16 — compaction debt is bounded at a few
    multiples of one merge, which is what keeps sustained-write throughput
    flat instead of sawtoothed.
    """

    slowdown_tables: int | None = None
    stall_tables: int | None = None
    #: per-write pause in the slowdown band (seconds).
    slowdown_sleep_seconds: float = 0.002
    #: stall re-check period; also bounds how long a writer waits on a
    #: scheduler that died between the check and the wait.
    poll_seconds: float = 0.05

    def resolve(self, compaction_trigger: int) -> tuple[int, int]:
        """Concrete ``(slowdown_tables, stall_tables)`` watermarks."""
        slowdown = (
            self.slowdown_tables
            if self.slowdown_tables is not None
            else 2 * compaction_trigger
        )
        stall = (
            self.stall_tables if self.stall_tables is not None else 4 * compaction_trigger
        )
        if slowdown < 1 or stall < 1:
            raise StoreError("admission-control watermarks must be positive")
        if stall < slowdown:
            raise StoreError(
                "stall_tables must be >= slowdown_tables "
                f"(got slowdown={slowdown}, stall={stall})"
            )
        return slowdown, stall


class CompactionScheduler:
    """Dedicated background thread draining an engine's compaction picks.

    The thread idles on an event with a coarse fallback timeout, so a missed
    notify (there are none by design, but threads are threads) costs at most
    one poll period.  Any exception escaping a merge is recorded on
    ``self.error``, the thread exits, and stalled writers are woken — the
    engine's admission control treats a dead scheduler as "compact inline".
    """

    #: fallback wakeup period when no notify arrives (seconds).
    IDLE_POLL_SECONDS = 0.2

    def __init__(self, engine: "LSMEngine", name: str = "lsm-compaction") -> None:
        self._engine = engine
        self._wake = threading.Event()
        self._stopped = False
        self.error: BaseException | None = None
        #: merges performed by this thread (diagnostics).
        self.merges = 0
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    @property
    def alive(self) -> bool:
        """Whether the background thread is still running."""
        return self._thread.is_alive()

    def notify(self) -> None:
        """Wake the thread (after a flush, or from a throttled writer)."""
        self._wake.set()

    def _run(self) -> None:
        while True:
            self._wake.wait(timeout=self.IDLE_POLL_SECONDS)
            self._wake.clear()
            if self._stopped:
                return
            try:
                while self._engine._compact_once():
                    self.merges += 1
                    if self._stopped:
                        return
            except BaseException as error:  # noqa: BLE001 - recorded, not hidden
                self.error = error
                # Wake every stalled writer so it sees the dead scheduler and
                # falls back to inline compaction instead of waiting forever.
                with self._engine._lock:
                    self._engine._stall_condition.notify_all()
                return

    def close(self) -> None:
        """Stop the thread and wait for an in-flight merge to finish."""
        self._stopped = True
        self._wake.set()
        self._thread.join(timeout=60)
