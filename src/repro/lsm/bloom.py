"""Bloom filter used by the LSM engine's SSTables to skip fruitless block reads.

RocksDB and LevelDB — the storage engines the paper's introduction targets —
attach a Bloom filter to every table file so point lookups for absent keys can
return without touching the data blocks.  The reproduction's LSM substrate does
the same; the filter is serialised into the SSTable footer section.
"""

from __future__ import annotations

import hashlib
import math

from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import StoreError


def _hash_pair(key: bytes) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``key`` (used for double hashing)."""
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big"), int.from_bytes(digest[8:16], "big")


class BloomFilter:
    """A classic Bloom filter over byte-string keys.

    ``capacity`` is the expected number of keys; ``false_positive_rate`` the
    target false-positive probability at that capacity.  The bit count and the
    number of hash functions are derived with the standard formulas.
    """

    def __init__(self, capacity: int, false_positive_rate: float = 0.01) -> None:
        if capacity < 1:
            raise StoreError("bloom filter capacity must be at least 1")
        if not 0 < false_positive_rate < 1:
            raise StoreError("false positive rate must be in (0, 1)")
        bit_count = math.ceil(-capacity * math.log(false_positive_rate) / (math.log(2) ** 2))
        self._bit_count = max(8, bit_count)
        self._hash_count = max(1, round(self._bit_count / capacity * math.log(2)))
        self._bits = bytearray((self._bit_count + 7) // 8)
        self._added = 0

    # ------------------------------------------------------------------ basic

    @property
    def bit_count(self) -> int:
        """Number of bits in the filter."""
        return self._bit_count

    @property
    def hash_count(self) -> int:
        """Number of hash functions."""
        return self._hash_count

    def __len__(self) -> int:
        return self._added

    def _positions(self, key: bytes):
        first, second = _hash_pair(key)
        for index in range(self._hash_count):
            yield (first + index * second) % self._bit_count

    def add(self, key: bytes) -> None:
        """Insert ``key``."""
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)
        self._added += 1

    def might_contain(self, key: bytes) -> bool:
        """``False`` means definitely absent; ``True`` means possibly present."""
        return all(self._bits[position // 8] & (1 << (position % 8)) for position in self._positions(key))

    # -------------------------------------------------------------- estimates

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set (a diagnostic for over-filled filters)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self._bit_count

    def estimated_false_positive_rate(self) -> float:
        """Expected false-positive probability given the keys added so far."""
        if self._added == 0:
            return 0.0
        exponent = -self._hash_count * self._added / self._bit_count
        return (1.0 - math.exp(exponent)) ** self._hash_count

    # ----------------------------------------------------------- persistence

    def to_bytes(self) -> bytes:
        """Serialise the filter for the SSTable footer."""
        out = bytearray()
        out += encode_uvarint(self._bit_count)
        out += encode_uvarint(self._hash_count)
        out += encode_uvarint(self._added)
        out += encode_uvarint(len(self._bits))
        out += self._bits
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["BloomFilter", int]:
        """Inverse of :meth:`to_bytes`; returns ``(filter, next_offset)``."""
        bit_count, offset = decode_uvarint(data, offset)
        hash_count, offset = decode_uvarint(data, offset)
        added, offset = decode_uvarint(data, offset)
        byte_count, offset = decode_uvarint(data, offset)
        end = offset + byte_count
        if end > len(data):
            raise StoreError("truncated bloom filter payload")
        instance = cls.__new__(cls)
        instance._bit_count = bit_count
        instance._hash_count = hash_count
        instance._bits = bytearray(data[offset:end])
        instance._added = added
        return instance, end
