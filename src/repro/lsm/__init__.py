"""LSM-tree storage engine substrate (RocksDB/LevelDB-style) for the PBC evaluation.

The paper motivates PBC with key-value engines whose block compression makes
point lookups expensive.  This package provides that substrate: a single-node
LSM engine (write-ahead log, memtable, SSTables with Bloom filters, size-tiered
compaction) whose SSTable value layout is pluggable —

* :class:`PlainPolicy` — values stored raw,
* :class:`BlockCompressionPolicy` — whole data blocks compressed with a block
  codec (the RocksDB/LevelDB configuration),
* :class:`RecordCompressionPolicy` — values compressed individually with a
  trained :class:`repro.tierbase.compression.ValueCompressor` such as PBC_F.

The LSM integration benchmark (``benchmarks/bench_lsm_engine.py``) compares the
three policies on space usage and point-lookup throughput, extending the
paper's Figure 5 / Table 8 story to a persistent storage engine.
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.compaction import CompactionConfig, CompactionScheduler
from repro.lsm.engine import QUARANTINE_DIR, DiskStats, EngineStats, LookupTiming, LSMEngine
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import (
    BlockCompressionPolicy,
    PlainPolicy,
    RecordCompressionPolicy,
    SSTable,
    SSTableInfo,
    StoragePolicy,
    write_sstable,
    write_sstable_stream,
)
from repro.lsm.wal import OP_DELETE, OP_PUT, SYNC_MODES, WriteAheadLog

__all__ = [
    "BlockCompressionPolicy",
    "BloomFilter",
    "CompactionConfig",
    "CompactionScheduler",
    "DiskStats",
    "EngineStats",
    "LSMEngine",
    "LookupTiming",
    "MemTable",
    "OP_DELETE",
    "OP_PUT",
    "PlainPolicy",
    "QUARANTINE_DIR",
    "RecordCompressionPolicy",
    "SYNC_MODES",
    "SSTable",
    "SSTableInfo",
    "StoragePolicy",
    "TOMBSTONE",
    "WriteAheadLog",
    "write_sstable",
    "write_sstable_stream",
]
