"""Block-wise and record-wise compressed stores (the Figure 5 substrate).

Key-value engines such as RocksDB compress data in *blocks*: to read one record
the whole containing block must be decompressed first.  Per-record compressors
(FSST, PBC, PBC_F) avoid that.  Figure 5 of the paper measures exactly this
trade-off: compression ratio and point-lookup speed as a function of block
size.

Two stores are provided:

* :class:`BlockStore` — groups records into fixed-size blocks and compresses
  each block with a block codec (e.g. the Zstd-like codec); ``get`` has to
  decompress the whole containing block.
* :class:`RecordStore` — compresses each record individually with a per-record
  compressor (any object exposing ``compress(str) -> bytes`` and
  ``decompress(bytes) -> str``, such as :class:`repro.core.compressor.PBCCompressor`
  or a :class:`~repro.compressors.base.Codec` adapted via :class:`CodecRecordCompressor`);
  ``get`` touches only one payload.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.codecs.base import pack_records
from repro.compressors.base import Codec
from repro.entropy.varint import decode_uvarint
from repro.exceptions import StoreError


class RecordCompressor(Protocol):
    """Anything that can compress and decompress one record at a time."""

    def compress(self, record: str) -> bytes:  # pragma: no cover - protocol
        ...

    def decompress(self, data: bytes) -> str:  # pragma: no cover - protocol
        ...


class CodecRecordCompressor:
    """Adapts a byte-level :class:`Codec` to the per-record compressor protocol."""

    def __init__(self, codec: Codec) -> None:
        self.codec = codec
        self.name = codec.name

    def compress(self, record: str) -> bytes:
        return self.codec.compress(record.encode("utf-8"))

    def decompress(self, data: bytes) -> str:
        return self.codec.decompress(data).decode("utf-8")


@dataclass
class LookupStats:
    """Outcome of a random-lookup measurement (Figure 5's right-hand axis)."""

    lookups: int
    elapsed_seconds: float

    @property
    def lookups_per_second(self) -> float:
        """Point lookups per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.lookups / self.elapsed_seconds


class BlockStore:
    """Records grouped into blocks of ``block_size`` records, block-compressed.

    The codec may be a plain :class:`~repro.compressors.base.Codec` or a
    :class:`repro.codecs.VersionedCodec`: in the versioned case every block
    payload carries the model-epoch header, so blocks appended before a
    retrain (:meth:`extend` after :meth:`~repro.codecs.VersionedCodec.train`)
    keep decoding against the epoch that wrote them.  The write-time epoch of
    each block is also recorded in :attr:`block_epochs` for inspection.
    """

    def __init__(self, codec: Codec, block_size: int) -> None:
        if block_size < 1:
            raise StoreError("block size must be at least 1")
        self.codec = codec
        self.block_size = block_size
        self._blocks: list[bytes] = []
        #: model epoch each block was written at (0 for un-versioned codecs).
        self.block_epochs: list[int] = []
        self._block_starts: list[int] = []  # first record index per block
        self._count = 0
        self._original_bytes = 0

    @classmethod
    def from_records(cls, records: Sequence[str], codec: Codec, block_size: int) -> "BlockStore":
        """Build a store from ``records``."""
        store = cls(codec=codec, block_size=block_size)
        store.load(records)
        return store

    def load(self, records: Sequence[str]) -> None:
        """(Re)build all blocks from ``records``."""
        self._blocks = []
        self.block_epochs = []
        self._block_starts = []
        self._count = 0
        self._original_bytes = 0
        self.extend(records)

    def extend(self, records: Sequence[str]) -> None:
        """Append ``records`` as new blocks; existing blocks are not rebuilt.

        This is the incremental-ingestion path: with a versioned codec, blocks
        written before a retrain stay at their old epoch (and stay decodable)
        while new blocks pick up the current one.  The final existing block is
        never repacked, so a partial trailing block stays partial.
        """
        epoch = getattr(self.codec, "current_epoch", 0)
        self._original_bytes += sum(len(record.encode("utf-8")) for record in records)
        for start in range(0, len(records), self.block_size):
            block_records = records[start : start + self.block_size]
            self._blocks.append(self.codec.compress(pack_records(block_records)))
            self.block_epochs.append(epoch)
            self._block_starts.append(self._count)
            self._count += len(block_records)

    def __len__(self) -> int:
        return self._count

    @property
    def compressed_bytes(self) -> int:
        """Total size of all compressed blocks."""
        return sum(len(block) for block in self._blocks)

    @property
    def ratio(self) -> float:
        """Compression ratio (compressed / original)."""
        if self._original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self._original_bytes

    def get(self, index: int) -> str:
        """Point lookup: decompress the containing block, then pick the record."""
        if not 0 <= index < self._count:
            raise StoreError(f"record index {index} out of range")
        # extend() may leave partial blocks mid-stream, so locate the block by
        # its first-record index rather than dividing by block_size.
        block_position = bisect_right(self._block_starts, index) - 1
        block = self._blocks[block_position]
        buffer = self.codec.decompress(block)
        count, offset = decode_uvarint(buffer, 0)
        target = index - self._block_starts[block_position]
        for record_position in range(count):
            length, offset = decode_uvarint(buffer, offset)
            end = offset + length
            if record_position == target:
                return buffer[offset:end].decode("utf-8")
            offset = end
        raise StoreError("record not found inside its block")

    def measure_lookups(self, indices: Sequence[int]) -> LookupStats:
        """Time random point lookups."""
        started = time.perf_counter()
        for index in indices:
            self.get(index)
        return LookupStats(lookups=len(indices), elapsed_seconds=time.perf_counter() - started)


class RecordStore:
    """Every record compressed individually; point lookups touch one payload."""

    def __init__(self, compressor: RecordCompressor) -> None:
        self.compressor = compressor
        self._payloads: list[bytes] = []
        self._original_bytes = 0

    @classmethod
    def from_records(cls, records: Sequence[str], compressor: RecordCompressor) -> "RecordStore":
        """Build a store from ``records``."""
        store = cls(compressor)
        store.load(records)
        return store

    def load(self, records: Sequence[str]) -> None:
        """(Re)build all payloads from ``records``."""
        self._payloads = [self.compressor.compress(record) for record in records]
        self._original_bytes = sum(len(record.encode("utf-8")) for record in records)

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def compressed_bytes(self) -> int:
        """Total size of all per-record payloads."""
        return sum(len(payload) for payload in self._payloads)

    @property
    def ratio(self) -> float:
        """Compression ratio (compressed / original)."""
        if self._original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self._original_bytes

    def get(self, index: int) -> str:
        """Point lookup: decompress exactly one payload."""
        if not 0 <= index < len(self._payloads):
            raise StoreError(f"record index {index} out of range")
        return self.compressor.decompress(self._payloads[index])

    def measure_lookups(self, indices: Sequence[int]) -> LookupStats:
        """Time random point lookups."""
        started = time.perf_counter()
        for index in indices:
            self.get(index)
        return LookupStats(lookups=len(indices), elapsed_seconds=time.perf_counter() - started)
