"""Block-wise and record-wise compressed stores (the Figure 5 substrate)."""

from repro.blockstore.store import (
    BlockStore,
    CodecRecordCompressor,
    LookupStats,
    RecordCompressor,
    RecordStore,
)

__all__ = [
    "BlockStore",
    "CodecRecordCompressor",
    "LookupStats",
    "RecordCompressor",
    "RecordStore",
]
