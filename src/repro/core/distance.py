"""String and cluster distances used by clustering and by the pruning strategy.

* :func:`one_gram_distance` — Definition 5; the multiset symbol distance that
  lower-bounds the encoding-length increment and is used to prune DP calls
  (Section 5.1).
* :func:`edit_distance` — classic Levenshtein distance, the naive clustering
  criterion of the Figure 7 ablation.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.core.pattern import WILDCARD


def symbol_counter(tokens: Sequence) -> Counter:
    """Multiset of literal symbols of a token sequence (wildcards are skipped)."""
    counter: Counter = Counter()
    for token in tokens:
        if token is not WILDCARD:
            counter[token] += 1
    return counter


def one_gram_distance_counters(counter_a: Counter, counter_b: Counter) -> int:
    """1-gram distance from precomputed symbol multisets.

    ``|MS1 ⊎ MS2| - 2 * |MS1 ∩ MS2|`` where the union is the *additive* multiset
    union and the intersection takes the minimum multiplicity per symbol — i.e.
    the size of the multiset symmetric difference.  This is zero for identical
    multisets, symmetric, and a valid lower bound on the encoding-length
    increment of Definition 3: every symbol occurrence that has no counterpart
    in the other cluster must be stored as at least one residual byte.
    """
    union = 0
    intersection = 0
    for symbol in counter_a.keys() | counter_b.keys():
        count_a = counter_a.get(symbol, 0)
        count_b = counter_b.get(symbol, 0)
        union += count_a + count_b
        intersection += count_a if count_a < count_b else count_b
    return union - 2 * intersection


def one_gram_distance(text_a: str | Sequence, text_b: str | Sequence) -> int:
    """1-gram distance between two strings or token sequences (Definition 5)."""
    counter_a = symbol_counter(list(text_a)) if not isinstance(text_a, str) else Counter(text_a)
    counter_b = symbol_counter(list(text_b)) if not isinstance(text_b, str) else Counter(text_b)
    return one_gram_distance_counters(counter_a, counter_b)


def edit_distance(sequence_a: Sequence, sequence_b: Sequence) -> int:
    """Levenshtein distance with unit costs (insert / delete / substitute)."""
    length_a = len(sequence_a)
    length_b = len(sequence_b)
    if length_a == 0:
        return length_b
    if length_b == 0:
        return length_a
    previous = list(range(length_b + 1))
    for i in range(1, length_a + 1):
        current = [i] + [0] * length_b
        item_a = sequence_a[i - 1]
        for j in range(1, length_b + 1):
            substitution = previous[j - 1] + (0 if item_a == sequence_b[j - 1] else 1)
            deletion = previous[j] + 1
            insertion = current[j - 1] + 1
            best = substitution
            if deletion < best:
                best = deletion
            if insertion < best:
                best = insertion
            current[j] = best
        previous = current
    return previous[length_b]


def longest_common_subsequence_length(sequence_a: Sequence, sequence_b: Sequence) -> int:
    """Length of the longest common subsequence of two sequences."""
    length_a = len(sequence_a)
    length_b = len(sequence_b)
    if length_a == 0 or length_b == 0:
        return 0
    previous = [0] * (length_b + 1)
    for i in range(1, length_a + 1):
        current = [0] * (length_b + 1)
        item_a = sequence_a[i - 1]
        for j in range(1, length_b + 1):
            if item_a == sequence_b[j - 1]:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = previous[j] if previous[j] >= current[j - 1] else current[j - 1]
        previous = current
    return previous[length_b]
