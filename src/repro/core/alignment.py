"""Minimal encoding-length merging dynamic programs (Section 4.2, Algorithms 1-2).

Two clusters ``C_x`` and ``C_y`` are described by the token sequences of their
optimal patterns (characters + wildcards) and their sizes (number of records).
Merging the clusters means finding a common subsequence of the two patterns to
keep as the merged pattern; every token that is *not* kept becomes residual data
for the records of the cluster it came from, and every new field incurs one
VARCHAR length descriptor per record of the merged cluster.

Two implementations are provided:

* :func:`monotonic_merge` — the O(n*m) dynamic program of Algorithms 1 and 2,
  valid for monotonic encoder sets (Definition 4); it additionally performs a
  traceback so the merged token sequence is returned alongside the encoding
  length increment.
* :func:`generic_merge` — the unrestricted dynamic program sketched at the start
  of Section 4.2 that enumerates all previous states and all encoders.  It is
  exponentially more expensive and exists as a reference for cross-checking the
  monotonic algorithm on small inputs (and for the non-monotonic encoder tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.encoders import select_encoder
from repro.core.pattern import WILDCARD, collapse_wildcards

#: state "type" flags of Algorithm 1: the previous token was kept in the pattern
#: or was turned into residual subsequence data.
IS_PATTERN = 0
IS_RS = 1

# traceback moves
_FROM_DIAGONAL = 0
_FROM_X = 1
_FROM_Y = 2


@dataclass(frozen=True)
class MergeResult:
    """Outcome of merging two cluster patterns."""

    increment: int
    """Encoding length increment (Definition 3) of the merge."""

    tokens: list
    """Merged pattern token sequence (characters and :data:`WILDCARD`)."""

    def __iter__(self):
        yield self.increment
        yield self.tokens


def _update_state(state: int, state_type: int, new_is_wildcard: bool, size_own: int, size_other: int) -> int:
    """Algorithm 2 (UpdateState) — cost of turning one more token into residual data.

    ``size_own`` is the size of the cluster the consumed token belongs to and
    ``size_other`` the size of the other cluster.  When the previous position was
    still part of the pattern (``IS_PATTERN``) a new field is opened, which costs
    one length descriptor per record of the *merged* cluster.  A literal character
    adds one payload byte per record of its own cluster, while consuming a
    wildcard releases the descriptors that were already accounted for when the
    own cluster's pattern was built.
    """
    if state_type == IS_PATTERN:
        state += size_own + size_other
    if not new_is_wildcard:
        state += size_own
    else:
        state -= size_own
    return state


def monotonic_merge(
    tokens_x: Sequence, tokens_y: Sequence, size_x: int, size_y: int
) -> MergeResult:
    """Minimal encoding-length merge for monotonic encoders (Algorithm 1).

    Among all merges with the minimal encoding-length increment the one that
    keeps the *most* literal characters in the pattern is preferred: under the
    VARCHAR cost model used during clustering, keeping an isolated matching
    character is cost-neutral, but the extra literal pays off later when field
    encoders are specialised (Definition 2), so ties are broken towards it.

    Parameters
    ----------
    tokens_x, tokens_y:
        Token sequences of the two cluster patterns (characters / WILDCARD).
    size_x, size_y:
        Number of records in the two clusters.

    Returns
    -------
    MergeResult
        The encoding-length increment and the merged token sequence.
    """
    n = len(tokens_x)
    m = len(tokens_y)
    width = m + 1
    size_both = size_x + size_y

    # The DP optimises lexicographically: primary key is the encoding-length
    # increment, secondary key (as a tie-breaker) is a weighted count of kept
    # pattern literals, maximised.  Separator characters (non-alphanumeric)
    # carry more weight than alphanumeric ones: keeping an isolated digit from
    # two unrelated number fields is encoding-length neutral but fragments the
    # field (hurting encoder specialisation), whereas keeping a separator marks
    # a real field boundary.  Both keys are folded into one integer score
    # ``EL * scale - kept_weight`` with ``scale`` larger than any possible
    # weight total, which keeps the inner loop to simple integer comparisons.
    scale = 4 * (n + m) + 2
    x_step = size_x * scale
    y_step = size_y * scale
    both_step = size_both * scale

    # Flat tables for speed; index = i * width + j.
    score = [0] * ((n + 1) * width)
    kept = [0] * ((n + 1) * width)
    state_type = [IS_PATTERN] * ((n + 1) * width)
    move = [_FROM_DIAGONAL] * ((n + 1) * width)

    # Initialisation: consuming a prefix of one pattern alone turns it into residuals.
    for i in range(1, n + 1):
        index = i * width
        previous = index - width
        value = score[previous]
        if state_type[previous] == IS_PATTERN:
            value += both_step
        value += x_step if tokens_x[i - 1] is not WILDCARD else -x_step
        state_type[index] = IS_RS
        score[index] = value
        move[index] = _FROM_X
    for j in range(1, m + 1):
        previous = j - 1
        value = score[previous]
        if state_type[previous] == IS_PATTERN:
            value += both_step
        value += y_step if tokens_y[j - 1] is not WILDCARD else -y_step
        state_type[j] = IS_RS
        score[j] = value
        move[j] = _FROM_Y

    for i in range(1, n + 1):
        token_x = tokens_x[i - 1]
        x_is_wildcard = token_x is WILDCARD
        x_cost = -x_step if x_is_wildcard else x_step
        row = i * width
        previous_row = row - width
        for j in range(1, m + 1):
            token_y = tokens_y[j - 1]
            index = row + j
            up = previous_row + j
            left = index - 1
            diagonal = previous_row + j - 1

            from_x = score[up] + x_cost
            if state_type[up] == IS_PATTERN:
                from_x += both_step
            from_y = score[left] + (-y_step if token_y is WILDCARD else y_step)
            if state_type[left] == IS_PATTERN:
                from_y += both_step

            if token_x == token_y and not x_is_wildcard:
                # The character can be kept in the merged pattern at no extra
                # cost; the weight rewards the kept literal in the tie-break term.
                weight = 1 if token_x.isalnum() else 4
                best = score[diagonal] - weight
                best_move = _FROM_DIAGONAL
                best_type = IS_PATTERN
                best_kept = kept[diagonal] + weight
                if from_x < best:
                    best, best_move, best_type, best_kept = from_x, _FROM_X, IS_RS, kept[up]
                if from_y < best:
                    best, best_move, best_type, best_kept = from_y, _FROM_Y, IS_RS, kept[left]
            else:
                best, best_move, best_type, best_kept = from_x, _FROM_X, IS_RS, kept[up]
                if from_y < best:
                    best, best_move, best_type, best_kept = from_y, _FROM_Y, IS_RS, kept[left]
            score[index] = best
            kept[index] = best_kept
            state_type[index] = best_type
            move[index] = best_move

    tokens = _traceback(tokens_x, tokens_y, move, width, n, m)
    final = n * width + m
    increment = (score[final] + kept[final]) // scale
    return MergeResult(increment=increment, tokens=tokens)


def _traceback(tokens_x: Sequence, tokens_y: Sequence, move: list, width: int, n: int, m: int) -> list:
    """Recover the merged pattern from the traceback table."""
    tokens: list = []
    i, j = n, m
    while i > 0 or j > 0:
        direction = move[i * width + j]
        if i > 0 and j > 0 and direction == _FROM_DIAGONAL:
            tokens.append(tokens_x[i - 1])
            i -= 1
            j -= 1
        elif i > 0 and (direction == _FROM_X or j == 0):
            tokens.append(WILDCARD)
            i -= 1
        else:
            tokens.append(WILDCARD)
            j -= 1
    tokens.reverse()
    return collapse_wildcards(tokens)


def merge_increment_bounded(
    tokens_x: Sequence, tokens_y: Sequence, size_x: int, size_y: int, bound: int
) -> int | None:
    """Like :func:`monotonic_merge` but abandons the DP once every state in a row
    exceeds ``bound`` (step 3 of the Section 5.1 pruning strategy).

    Returns the increment, or ``None`` if the computation was pruned.  No
    traceback information is kept, which makes this variant the cheap primitive
    used while scanning for the closest cluster pair.
    """
    n = len(tokens_x)
    m = len(tokens_y)
    width = m + 1
    size_both = size_x + size_y

    previous_state = [0] * width
    previous_type = [IS_PATTERN] * width
    for j in range(1, m + 1):
        value = previous_state[j - 1]
        if previous_type[j - 1] == IS_PATTERN:
            value += size_both
        value += -size_y if tokens_y[j - 1] is WILDCARD else size_y
        previous_state[j] = value
        previous_type[j] = IS_RS

    y_costs = [-size_y if token is WILDCARD else size_y for token in tokens_y]

    for i in range(1, n + 1):
        token_x = tokens_x[i - 1]
        x_is_wildcard = token_x is WILDCARD
        x_cost = -size_x if x_is_wildcard else size_x
        current_state = [0] * width
        current_type = [IS_RS] * width
        value = previous_state[0] + x_cost
        if previous_type[0] == IS_PATTERN:
            value += size_both
        current_state[0] = value
        row_minimum = value
        for j in range(1, m + 1):
            from_x = previous_state[j] + x_cost
            if previous_type[j] == IS_PATTERN:
                from_x += size_both
            from_y = current_state[j - 1] + y_costs[j - 1]
            if current_type[j - 1] == IS_PATTERN:
                from_y += size_both
            if token_x == tokens_y[j - 1] and not x_is_wildcard:
                best = previous_state[j - 1]
                best_type = IS_PATTERN
                if from_x < best:
                    best, best_type = from_x, IS_RS
                if from_y < best:
                    best, best_type = from_y, IS_RS
            else:
                best, best_type = (from_x, IS_RS) if from_x <= from_y else (from_y, IS_RS)
            current_state[j] = best
            current_type[j] = best_type
            if best < row_minimum:
                row_minimum = best
        if row_minimum > bound:
            return None
        previous_state, previous_type = current_state, current_type
    return previous_state[m]


def generic_merge(
    records_x: Sequence[str], records_y: Sequence[str], tokens_x: Sequence, tokens_y: Sequence
) -> MergeResult:
    """Reference DP for arbitrary (possibly non-monotonic) encoder sets.

    Implements the unrestricted state transition of Section 4.2: every state
    ``state[i][j]`` is reached from *any* earlier state ``state[i-k][j-l]`` by
    turning the skipped token ranges into a single new field whose encoder is
    chosen optimally (via :func:`repro.core.encoders.select_encoder`) for the
    concrete residual values that the records of both clusters would store.

    The cost model evaluates the real encoders on the real residual strings, so
    this function needs the cluster *records*, not just the sizes.  Complexity is
    O(|F| * (N+M) * n^2 * m^2); it is only intended for small inputs (tests and
    cross-validation of :func:`monotonic_merge`).
    """
    n = len(tokens_x)
    m = len(tokens_y)

    def field_cost(x_piece: Sequence, y_piece: Sequence) -> int:
        """Cost of storing the skipped token ranges as one field for all records."""
        x_text = "".join("" if token is WILDCARD else token for token in x_piece)
        y_text = "".join("" if token is WILDCARD else token for token in y_piece)
        values = [x_text] * len(records_x) + [y_text] * len(records_y)
        encoder = select_encoder(values)
        return sum(encoder.cost(value) for value in values)

    infinity = float("inf")
    state = [[infinity] * (m + 1) for _ in range(n + 1)]
    parent: list[list[tuple[int, int] | None]] = [[None] * (m + 1) for _ in range(n + 1)]
    state[0][0] = 0.0

    for i in range(n + 1):
        for j in range(m + 1):
            if state[i][j] is infinity:
                continue
            # Keep the next characters if they match (zero cost, stays in pattern).
            if i < n and j < m and tokens_x[i] == tokens_y[j] and tokens_x[i] is not WILDCARD:
                if state[i][j] < state[i + 1][j + 1]:
                    state[i + 1][j + 1] = state[i][j]
                    parent[i + 1][j + 1] = (i, j)
            # Open a field covering tokens_x[i:i+k] and tokens_y[j:j+l].
            for k in range(0, n - i + 1):
                for l in range(0, m - j + 1):
                    if k == 0 and l == 0:
                        continue
                    cost = state[i][j] + field_cost(tokens_x[i : i + k], tokens_y[j : j + l])
                    if cost < state[i + k][j + l]:
                        state[i + k][j + l] = cost
                        parent[i + k][j + l] = (i, j)

    tokens: list = []
    i, j = n, m
    while (i, j) != (0, 0):
        origin = parent[i][j]
        assert origin is not None
        pi, pj = origin
        if i - pi == 1 and j - pj == 1 and tokens_x[pi] == tokens_y[pj] and tokens_x[pi] is not WILDCARD:
            tokens.append(tokens_x[pi])
        else:
            tokens.append(WILDCARD)
        i, j = pi, pj
    tokens.reverse()
    return MergeResult(increment=int(state[n][m]), tokens=collapse_wildcards(tokens))
