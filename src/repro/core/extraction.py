"""Offline pattern extraction: sampling, clustering and encoder specialisation.

This is the Figure 1(a) pipeline.  Given a sample of records it

1. (optionally) truncates the sample to a byte budget (Section 7.3.3 shows a few
   megabytes suffice),
2. runs the agglomerative minimal encoding-length clustering down to the target
   pattern count (Section 4),
3. derives one pattern per cluster and specialises each wildcard field to the
   cheapest encoder able to represent every residual value observed in the
   cluster (Definition 2's optimal encoding function),
4. returns a :class:`repro.core.pattern.PatternDictionary`.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from repro.core.clustering import AgglomerativeClusterer, ClusteringStats
from repro.core.criteria import ClusterState, MergeCriterion, make_criterion
from repro.core.encoders import VarcharEncoder, select_encoder
from repro.core.pattern import (
    WILDCARD,
    Pattern,
    PatternDictionary,
    collapse_wildcards,
    tokens_to_segments,
)
from repro.exceptions import ClusteringError


def _short_literal_runs(tokens: list, max_run: int = 2) -> list[tuple[int, int]]:
    """``(start, end)`` index ranges of literal runs of at most ``max_run`` tokens.

    Only runs adjacent to at least one wildcard are returned — removing a run in
    the middle of a longer literal stretch can never help, and runs at the very
    start or end of the pattern are kept because they anchor the match.
    """
    runs: list[tuple[int, int]] = []
    index = 0
    count = len(tokens)
    while index < count:
        if tokens[index] is WILDCARD:
            index += 1
            continue
        start = index
        while index < count and tokens[index] is not WILDCARD:
            index += 1
        end = index
        touches_wildcard = (start > 0 and tokens[start - 1] is WILDCARD) or (
            end < count and tokens[end] is WILDCARD
        )
        if end - start <= max_run and touches_wildcard and start > 0 and end < count:
            runs.append((start, end))
    return runs


@dataclass
class ExtractionConfig:
    """Tuning knobs of the pattern-extraction phase.

    ``max_patterns`` is the cluster-count constraint ``k`` of Problem 1;
    ``sample_size`` / ``sample_bytes`` bound the training sample (Figure 9a);
    ``criterion`` selects the clustering criterion (Figure 7 ablation);
    ``use_pruning`` toggles the 1-gram pruning (Figure 8);
    ``pre_group`` and ``max_seed_clusters`` are the Python-substrate engineering
    knobs described in docs/ARCHITECTURE.md.
    """

    max_patterns: int = 16
    sample_size: int | None = 256
    sample_bytes: int | None = None
    criterion: str = "el"
    use_pruning: bool = True
    pre_group: bool = True
    max_seed_clusters: int | None = 192
    max_pattern_prefix: int | None = 512
    max_group_representatives: int = 16
    refine_patterns: bool = True
    min_cluster_size: int = 1
    seed: int = 2023

    def make_criterion(self) -> MergeCriterion:
        """Instantiate the configured clustering criterion."""
        return make_criterion(self.criterion)


@dataclass
class ExtractionReport:
    """Outcome of a pattern-extraction run (dictionary + instrumentation)."""

    dictionary: PatternDictionary
    clustering_stats: ClusteringStats
    sample_count: int
    sample_bytes: int
    cluster_sizes: list[int] = field(default_factory=list)


class PatternExtractor:
    """Extracts a pattern dictionary from a sample of records (Figure 1a)."""

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        self.config = config if config is not None else ExtractionConfig()

    # -------------------------------------------------------------- sampling

    def _sample(self, records: list[str]) -> list[str]:
        """Apply the record-count and byte budgets to the training sample."""
        config = self.config
        sample = list(records)
        if config.sample_size is not None and len(sample) > config.sample_size:
            rng = random.Random(config.seed)
            sample = rng.sample(sample, config.sample_size)
        if config.sample_bytes is not None:
            budget = config.sample_bytes
            trimmed: list[str] = []
            used = 0
            for record in sample:
                size = len(record.encode("utf-8"))
                if used + size > budget and trimmed:
                    break
                trimmed.append(record)
                used += size
            sample = trimmed
        return sample

    # ------------------------------------------------------------ extraction

    def extract(self, records: list[str]) -> ExtractionReport:
        """Run the full extraction pipeline and return dictionary + stats."""
        if not records:
            raise ClusteringError("cannot extract patterns from an empty sample")
        config = self.config
        sample = self._sample(records)
        clusterer = AgglomerativeClusterer(
            target_clusters=config.max_patterns,
            criterion=config.make_criterion(),
            use_pruning=config.use_pruning,
            pre_group=config.pre_group,
            max_seed_clusters=config.max_seed_clusters,
            max_pattern_prefix=config.max_pattern_prefix,
            max_group_representatives=config.max_group_representatives,
        )
        result = clusterer.cluster(sample)

        dictionary = PatternDictionary()
        cluster_sizes: list[int] = []
        next_id = 1
        for cluster in result.clusters:
            if cluster.size < config.min_cluster_size:
                continue
            pattern = self._build_pattern(next_id, cluster, sample)
            if pattern is None:
                continue
            dictionary.add(pattern)
            cluster_sizes.append(cluster.size)
            next_id += 1

        return ExtractionReport(
            dictionary=dictionary,
            clustering_stats=result.stats,
            sample_count=len(sample),
            sample_bytes=sum(len(record.encode("utf-8")) for record in sample),
            cluster_sizes=cluster_sizes,
        )

    def fit(self, records: list[str]) -> PatternDictionary:
        """Convenience wrapper returning only the dictionary."""
        return self.extract(records).dictionary

    # ------------------------------------------------------------- internals

    def _build_pattern(self, pattern_id: int, cluster: ClusterState, sample: list[str]) -> Pattern | None:
        """Turn a cluster into a pattern with specialised field encoders.

        When ``refine_patterns`` is enabled the cluster's token sequence is
        first cleaned up: short literal runs that merging into the neighbouring
        wildcard would make the encoded residuals *smaller* (per Definition 2's
        optimal-pattern criterion) are dropped.  Such runs typically come from
        spurious single-character alignments between unrelated field values.
        """
        members = [sample[index] for index in cluster.members]
        tokens = list(cluster.tokens)
        if self.config.refine_patterns:
            tokens = self._refine_tokens(tokens, members)

        cost, pattern = self._evaluate_tokens(pattern_id, tokens, members)
        if pattern is None:
            # Fall back to the unrefined tokens with VARCHAR-typed fields.
            literals, field_count = tokens_to_segments(cluster.tokens)
            return Pattern(
                pattern_id=pattern_id,
                literals=tuple(literals),
                encoders=tuple(VarcharEncoder() for _ in range(field_count)),
            )
        return pattern

    def _refine_tokens(self, tokens: list, members: list[str]) -> list:
        """Drop short literal runs whose removal lowers the encoded residual size."""
        best_cost, best_pattern = self._evaluate_tokens(0, tokens, members)
        if best_pattern is None:
            return tokens
        best_tokens = tokens
        improved = True
        while improved:
            improved = False
            runs = _short_literal_runs(best_tokens, max_run=2)
            for start, end in runs:
                candidate = best_tokens[:start] + [WILDCARD] + best_tokens[end:]
                candidate_cost, candidate_pattern = self._evaluate_tokens(0, candidate, members)
                if candidate_pattern is not None and candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_tokens = candidate
                    improved = True
                    break
        return best_tokens

    def _evaluate_tokens(
        self, pattern_id: int, tokens: list, members: list[str]
    ) -> tuple[float, Pattern | None]:
        """Encoded size of all member residuals under ``tokens`` plus the built pattern."""
        tokens = collapse_wildcards(tokens)
        literals, field_count = tokens_to_segments(tokens)
        if field_count == 0:
            if all(member == literals[0] for member in members):
                return 0.0, Pattern(pattern_id=pattern_id, literals=tuple(literals), encoders=())
            return float("inf"), None

        varchar_pattern = Pattern(
            pattern_id=pattern_id,
            literals=tuple(literals),
            encoders=tuple(VarcharEncoder() for _ in range(field_count)),
        )
        regex = re.compile(varchar_pattern.to_regex(), re.DOTALL)
        columns: list[list[str]] = [[] for _ in range(field_count)]
        matched_any = False
        for member in members:
            matched = regex.match(member)
            if matched is None:
                # Members that no longer match (possible when only a prefix of
                # the group took part in the merge DP) are compressed as
                # outliers later; they do not contribute to encoder selection.
                continue
            matched_any = True
            for column, value in zip(columns, matched.groups()):
                column.append(value)
        if not matched_any:
            return float("inf"), None

        encoders = tuple(select_encoder(column) for column in columns)
        total_cost = sum(
            encoder.cost(value) for encoder, column in zip(encoders, columns) for value in column
        )
        pattern = Pattern(pattern_id=pattern_id, literals=tuple(literals), encoders=encoders)
        return float(total_cost), pattern
