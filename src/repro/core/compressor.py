"""Pattern-based record compression and decompression (Figure 1b/c).

The compressed form of a record is ``uvarint(pattern_id) + encoded fields``;
records that match no pattern are outliers stored as ``uvarint(0) + raw bytes``.
Because every record is compressed individually, random access needs no block
decompression — this is the property Figure 5 evaluates.

Variants
--------
* :class:`PBCCompressor` — plain PBC; residual fields are stored with the field
  encoders only.
* :class:`PBCFCompressor` — PBC_F; the encoded field payload of every record is
  additionally passed through a trained FSST symbol table (still per-record, so
  random access is preserved).
* :class:`PBCHCompressor` — PBC_H; the encoded field payload is passed through a
  residual *entropy* codec (shared rANS or Huffman model, or per-record adaptive
  arithmetic coding) — Section 5.2's "entropy encoding techniques" option.
* :class:`PBCBlockCompressor` — PBC_Z / PBC_L; per-record PBC encodings are
  concatenated into blocks (or a whole file) and compressed with a block codec
  such as the Zstd-like codec or LZMA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence

from repro.core.extraction import ExtractionConfig, ExtractionReport, PatternExtractor
from repro.core.matcher import MultiPatternMatcher
from repro.core.pattern import OUTLIER_PATTERN_ID, PatternDictionary
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import CompressorError, DecodingError


@dataclass
class CompressionStats:
    """Aggregate statistics of a compression run."""

    records: int = 0
    original_bytes: int = 0
    compressed_bytes: int = 0
    outliers: int = 0
    compress_seconds: float = 0.0
    decompress_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        """Compression ratio as defined in the paper: compressed / original."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def outlier_rate(self) -> float:
        """Fraction of records stored raw because no pattern matched."""
        if self.records == 0:
            return 0.0
        return self.outliers / self.records

    @property
    def compress_mb_per_second(self) -> float:
        """Compression throughput over the original bytes."""
        if self.compress_seconds <= 0:
            return 0.0
        return self.original_bytes / 1e6 / self.compress_seconds

    @property
    def decompress_mb_per_second(self) -> float:
        """Decompression throughput over the original bytes."""
        if self.decompress_seconds <= 0:
            return 0.0
        return self.original_bytes / 1e6 / self.decompress_seconds

    def merge(self, other: "CompressionStats") -> "CompressionStats":
        """Combine two stats objects (used when aggregating across datasets)."""
        return CompressionStats(
            records=self.records + other.records,
            original_bytes=self.original_bytes + other.original_bytes,
            compressed_bytes=self.compressed_bytes + other.compressed_bytes,
            outliers=self.outliers + other.outliers,
            compress_seconds=self.compress_seconds + other.compress_seconds,
            decompress_seconds=self.decompress_seconds + other.decompress_seconds,
        )


class ResidualCodec(Protocol):
    """Per-record transform applied to the encoded field payload (e.g. FSST)."""

    def compress(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...

    def decompress(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...


class BlockCodec(Protocol):
    """Block-wise codec (Zstd-like, LZMA, ...) used by PBC_Z / PBC_L."""

    def compress(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...

    def decompress(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...


class PBCCompressor:
    """Per-record pattern-based compressor (the plain PBC variant).

    The compressor is trained offline (``train``) on a sample of records, after
    which :meth:`compress` / :meth:`decompress` operate on individual records.
    The outlier rate is monitored; when it exceeds ``retrain_threshold`` the
    optional ``retrain_callback`` fires once (Section 3.2 / Section 7.5).
    """

    name = "PBC"

    def __init__(
        self,
        dictionary: PatternDictionary | None = None,
        config: ExtractionConfig | None = None,
        retrain_threshold: float = 0.2,
        retrain_callback: Callable[["PBCCompressor"], None] | None = None,
    ) -> None:
        self.config = config if config is not None else ExtractionConfig()
        self.retrain_threshold = retrain_threshold
        self.retrain_callback = retrain_callback
        self._matcher: MultiPatternMatcher | None = None
        self._dictionary: PatternDictionary | None = None
        self._seen_records = 0
        self._seen_outliers = 0
        self._retrain_fired = False
        self._stats: CompressionStats | None = None
        self._stats_timed = False
        self.last_extraction: ExtractionReport | None = None
        if dictionary is not None:
            self.load_dictionary(dictionary)

    # ------------------------------------------------------------------ train

    def train(self, sample: Sequence[str]) -> ExtractionReport:
        """Extract a pattern dictionary from ``sample`` and install it."""
        extractor = PatternExtractor(self.config)
        report = extractor.extract(list(sample))
        self.load_dictionary(report.dictionary)
        self.last_extraction = report
        return report

    def load_dictionary(self, dictionary: PatternDictionary) -> None:
        """Install a pre-built pattern dictionary."""
        self._dictionary = dictionary
        self._matcher = MultiPatternMatcher(dictionary)
        self._seen_records = 0
        self._seen_outliers = 0
        self._retrain_fired = False

    @property
    def dictionary(self) -> PatternDictionary:
        """The installed pattern dictionary."""
        self._require_trained()
        assert self._dictionary is not None
        return self._dictionary

    @property
    def is_trained(self) -> bool:
        """Whether a dictionary has been installed."""
        return self._matcher is not None

    def _require_trained(self) -> None:
        if self._matcher is None:
            raise CompressorError(f"{self.name} must be trained before use")

    # --------------------------------------------------------------- encoding

    def _encode_payload(self, payload: bytes) -> bytes:
        """Hook for variants that post-process the field payload (PBC_F)."""
        return payload

    def _decode_payload(self, payload: bytes) -> bytes:
        """Inverse of :meth:`_encode_payload`."""
        return payload

    def compress(self, record: str) -> bytes:
        """Compress a single record."""
        stats = self._stats
        if stats is None:
            return self._compress_record(record)
        # Timing is opt-in: the default live-stats path costs two counter
        # updates and no clock calls (see :meth:`enable_stats`).
        started = time.perf_counter() if self._stats_timed else 0.0
        outliers_before = self._seen_outliers
        payload = self._compress_record(record)
        if self._stats_timed:
            stats.compress_seconds += time.perf_counter() - started
        stats.records += 1
        stats.original_bytes += len(record.encode("utf-8"))
        stats.compressed_bytes += len(payload)
        if self._seen_outliers != outliers_before:
            stats.outliers += 1
        return payload

    def _compress_record(self, record: str) -> bytes:
        self._require_trained()
        assert self._matcher is not None
        match = self._matcher.match(record)
        self._seen_records += 1
        if match is None:
            self._seen_outliers += 1
            self._maybe_retrain()
            raw = self._encode_payload(record.encode("utf-8"))
            return encode_uvarint(OUTLIER_PATTERN_ID) + raw
        payload = match.pattern.encode_fields(match.field_values)
        return encode_uvarint(match.pattern.pattern_id) + self._encode_payload(payload)

    def decompress(self, data: bytes) -> str:
        """Decompress a single record."""
        stats = self._stats
        if stats is None or not self._stats_timed:
            return self._decompress_record(data)
        started = time.perf_counter()
        record = self._decompress_record(data)
        stats.decompress_seconds += time.perf_counter() - started
        return record

    def _decompress_record(self, data: bytes) -> str:
        self._require_trained()
        assert self._dictionary is not None
        pattern_id, offset = decode_uvarint(data, 0)
        payload = self._decode_payload(data[offset:])
        if pattern_id == OUTLIER_PATTERN_ID:
            return payload.decode("utf-8")
        pattern = self._dictionary.get(pattern_id)
        values, end = pattern.decode_fields(payload, 0)
        if end != len(payload):
            raise DecodingError(
                f"trailing {len(payload) - end} bytes after decoding pattern {pattern_id}"
            )
        return pattern.reconstruct(values)

    # ------------------------------------------------------------- live stats

    def enable_stats(self, timed: bool = False) -> CompressionStats:
        """Attach a live :class:`CompressionStats` updated on every (de)compress.

        With ``timed=False`` (the default) the hot path performs no clock
        calls: only record/byte/outlier counters are maintained, which is what
        the stream pipeline uses inside its frame workers.  Pass ``timed=True``
        to also accumulate per-record wall-clock time.
        """
        self._stats = CompressionStats()
        self._stats_timed = timed
        return self._stats

    def disable_stats(self) -> CompressionStats | None:
        """Detach and return the live stats object (``None`` if not enabled)."""
        stats = self._stats
        self._stats = None
        self._stats_timed = False
        return stats

    # ------------------------------------------------------------- bulk paths

    def compress_many(self, records: Iterable[str]) -> list[bytes]:
        """Compress an iterable of records, one payload per record."""
        return [self.compress(record) for record in records]

    def decompress_many(self, payloads: Iterable[bytes]) -> list[str]:
        """Decompress a list of per-record payloads."""
        return [self.decompress(payload) for payload in payloads]

    def measure(self, records: Sequence[str]) -> CompressionStats:
        """Compress and decompress ``records``, verifying the roundtrip, and time it."""
        self._require_trained()
        stats = CompressionStats()
        started = time.perf_counter()
        payloads = [self.compress(record) for record in records]
        stats.compress_seconds = time.perf_counter() - started
        started = time.perf_counter()
        restored = [self.decompress(payload) for payload in payloads]
        stats.decompress_seconds = time.perf_counter() - started
        for record, payload, result in zip(records, payloads, restored):
            if result != record:
                raise DecodingError("roundtrip mismatch during measurement")
            stats.records += 1
            stats.original_bytes += len(record.encode("utf-8"))
            stats.compressed_bytes += len(payload)
            if payload and decode_uvarint(payload, 0)[0] == OUTLIER_PATTERN_ID:
                stats.outliers += 1
        return stats

    # ------------------------------------------------------------- monitoring

    @property
    def outlier_rate(self) -> float:
        """Observed outlier rate since the current dictionary was installed."""
        if self._seen_records == 0:
            return 0.0
        return self._seen_outliers / self._seen_records

    def _maybe_retrain(self) -> None:
        if (
            not self._retrain_fired
            and self.retrain_callback is not None
            and self._seen_records >= 64
            and self.outlier_rate >= self.retrain_threshold
        ):
            self._retrain_fired = True
            self.retrain_callback(self)


class PBCFCompressor(PBCCompressor):
    """PBC_F: PBC with the encoded field payload passed through FSST.

    The FSST symbol table is trained on the field payloads of the training
    sample, so frequently repeated residual substrings compress further while
    the per-record property (and thus random access) is preserved.
    """

    name = "PBC_F"

    def __init__(
        self,
        dictionary: PatternDictionary | None = None,
        config: ExtractionConfig | None = None,
        residual_codec: ResidualCodec | None = None,
        **kwargs,
    ) -> None:
        self._residual_codec = residual_codec
        super().__init__(dictionary=dictionary, config=config, **kwargs)

    def train(self, sample: Sequence[str]) -> ExtractionReport:
        report = super().train(sample)
        if self._residual_codec is None:
            self._residual_codec = self._train_residual_codec(sample)
        return report

    def train_residual(self, sample: Sequence[str]) -> None:
        """Train only the FSST residual codec against the installed dictionary.

        Useful when the pattern dictionary was trained elsewhere (e.g. shared
        with a plain :class:`PBCCompressor`) and only the residual symbol table
        still needs fitting.
        """
        self._require_trained()
        self._residual_codec = self._train_residual_codec(sample)

    def _train_residual_codec(self, sample: Sequence[str]) -> ResidualCodec:
        """Train an FSST symbol table on the raw field payloads of the sample."""
        from repro.compressors.fsst import FSSTCodec
        from repro.core.residual import collect_training_payloads

        assert self._matcher is not None
        payloads = collect_training_payloads(self._matcher, sample)
        codec = FSSTCodec()
        codec.train(payloads)
        return codec

    def _encode_payload(self, payload: bytes) -> bytes:
        if self._residual_codec is None:
            return payload
        return self._residual_codec.compress(payload)

    def _decode_payload(self, payload: bytes) -> bytes:
        if self._residual_codec is None:
            return payload
        return self._residual_codec.decompress(payload)


class PBCHCompressor(PBCCompressor):
    """PBC_H: PBC with an entropy-coded residual payload (Section 5.2, option 1).

    The residual stage is selected with ``entropy``:

    * ``"rans"`` (default) — a shared rANS model trained on the sample payloads,
    * ``"huffman"`` — a shared canonical Huffman code,
    * ``"arithmetic"`` — per-record adaptive arithmetic coding (no training).

    Like PBC_F, the transform is applied per record, so random access is kept.
    """

    name = "PBC_H"

    def __init__(
        self,
        dictionary: PatternDictionary | None = None,
        config: ExtractionConfig | None = None,
        entropy: str = "rans",
        **kwargs,
    ) -> None:
        from repro.core.residual import make_residual_codec

        self.entropy = entropy
        self._residual_codec = make_residual_codec(entropy)
        super().__init__(dictionary=dictionary, config=config, **kwargs)

    def train(self, sample: Sequence[str]) -> ExtractionReport:
        report = super().train(sample)
        self.train_residual(sample)
        return report

    def train_residual(self, sample: Sequence[str]) -> None:
        """Fit the shared entropy model against the installed dictionary."""
        from repro.core.residual import collect_training_payloads

        self._require_trained()
        assert self._matcher is not None
        payloads = collect_training_payloads(self._matcher, sample)
        self._residual_codec.train(payloads)

    def _encode_payload(self, payload: bytes) -> bytes:
        return self._residual_codec.compress(payload)

    def _decode_payload(self, payload: bytes) -> bytes:
        return self._residual_codec.decompress(payload)


class PBCBlockCompressor:
    """PBC_Z / PBC_L: PBC followed by a block codec over concatenated records.

    ``compress_block`` stores ``uvarint(count)`` followed by length-prefixed
    per-record PBC payloads, then compresses the whole buffer with the block
    codec.  This trades random access for a higher compression ratio, exactly
    like the Table 4 / file-compression configuration of the paper.
    """

    def __init__(self, pbc: PBCCompressor, block_codec: BlockCodec, name: str | None = None) -> None:
        self.pbc = pbc
        self.block_codec = block_codec
        self.name = name if name is not None else f"PBC+{type(block_codec).__name__}"

    def train(self, sample: Sequence[str]) -> ExtractionReport:
        """Train the underlying PBC compressor."""
        return self.pbc.train(sample)

    def compress_block(self, records: Sequence[str]) -> bytes:
        """Compress a block of records into one opaque payload."""
        buffer = bytearray()
        buffer += encode_uvarint(len(records))
        for record in records:
            payload = self.pbc.compress(record)
            buffer += encode_uvarint(len(payload))
            buffer += payload
        return self.block_codec.compress(bytes(buffer))

    def decompress_block(self, data: bytes) -> list[str]:
        """Decompress a payload produced by :meth:`compress_block`."""
        buffer = self.block_codec.decompress(data)
        count, offset = decode_uvarint(buffer, 0)
        records: list[str] = []
        for _ in range(count):
            length, offset = decode_uvarint(buffer, offset)
            end = offset + length
            if end > len(buffer):
                raise DecodingError("truncated PBC block")
            records.append(self.pbc.decompress(buffer[offset:end]))
            offset = end
        return records

    def compress_file(self, records: Sequence[str]) -> bytes:
        """Whole-file compression (Table 4): one block containing every record."""
        return self.compress_block(records)

    def decompress_file(self, data: bytes) -> list[str]:
        """Inverse of :meth:`compress_file`."""
        return self.decompress_block(data)

    def measure(self, records: Sequence[str], block_size: int | None = None) -> CompressionStats:
        """Measure ratio and speed over blocks of ``block_size`` records."""
        stats = CompressionStats()
        if block_size is None or block_size <= 0:
            block_size = len(records)
        blocks: list[bytes] = []
        started = time.perf_counter()
        for start in range(0, len(records), block_size):
            blocks.append(self.compress_block(records[start : start + block_size]))
        stats.compress_seconds = time.perf_counter() - started
        started = time.perf_counter()
        restored: list[str] = []
        for block in blocks:
            restored.extend(self.decompress_block(block))
        stats.decompress_seconds = time.perf_counter() - started
        if restored != list(records):
            raise DecodingError("roundtrip mismatch during block measurement")
        stats.records = len(records)
        stats.original_bytes = sum(len(record.encode("utf-8")) for record in records)
        stats.compressed_bytes = sum(len(block) for block in blocks)
        return stats
