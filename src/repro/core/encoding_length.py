"""The encoding-length model of Section 4.1 (Definitions 1-3).

These functions evaluate the *actual* encoding length of a string set under a
pattern and an encoding function, independent of the dynamic programs used
during clustering.  They are primarily used by tests (to validate that the
clustering DP's increments are consistent with the definition) and by the
ablation benchmarks.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.core.encoders import FieldEncoder, VarcharEncoder, select_encoder
from repro.core.pattern import Pattern, tokens_to_segments


def residual_field_values(pattern_tokens: Sequence, record: str) -> list[str] | None:
    """Split ``record`` into per-field residual values according to a token pattern.

    Returns ``None`` if the record does not match the pattern (it is then an
    outlier with respect to that pattern).
    """
    literals, field_count = tokens_to_segments(pattern_tokens)
    probe = Pattern(
        pattern_id=1,
        literals=tuple(literals),
        encoders=tuple(VarcharEncoder() for _ in range(field_count)),
    )
    matched = re.compile(probe.to_regex(), re.DOTALL).match(record)
    if matched is None:
        return None
    return list(matched.groups())


def encoding_length(
    records: Sequence[str],
    pattern_tokens: Sequence,
    encoders: Sequence[FieldEncoder] | None = None,
) -> int:
    """``EL(S, p, f)`` — Definition 1: total encoded size of all residuals.

    When ``encoders`` is ``None`` every field uses VARCHAR (the monotonic
    encoding function assumed during clustering).
    """
    _, field_count = tokens_to_segments(pattern_tokens)
    if encoders is None:
        encoders = [VarcharEncoder() for _ in range(field_count)]
    if len(encoders) != field_count:
        raise ValueError(f"pattern has {field_count} fields but {len(encoders)} encoders given")
    total = 0
    for record in records:
        values = residual_field_values(pattern_tokens, record)
        if values is None:
            raise ValueError(f"record {record!r} does not match the pattern")
        for encoder, value in zip(encoders, values):
            total += encoder.cost(value)
    return total


def minimal_encoding_length(records: Sequence[str], pattern_tokens: Sequence) -> int:
    """``EL_min(S)`` under a fixed pattern: optimal per-field encoder selection.

    This realises the "optimal encoding function" part of Definition 2 for a
    given pattern: each field independently picks the cheapest encoder able to
    represent all of its values.
    """
    _, field_count = tokens_to_segments(pattern_tokens)
    if field_count == 0:
        return 0
    columns: list[list[str]] = [[] for _ in range(field_count)]
    for record in records:
        values = residual_field_values(pattern_tokens, record)
        if values is None:
            raise ValueError(f"record {record!r} does not match the pattern")
        for column, value in zip(columns, values):
            column.append(value)
    encoders = [select_encoder(column) for column in columns]
    return sum(encoder.cost(value) for encoder, column in zip(encoders, columns) for value in column)


def varchar_encoding_length(records: Sequence[str], pattern_tokens: Sequence) -> int:
    """``EL(S, p, f_vc)`` with the VARCHAR encoding function used during clustering."""
    return encoding_length(records, pattern_tokens, None)
