"""Core of the reproduction: the Pattern-Based Compression (PBC) algorithm.

This package implements Sections 3-6 of the paper:

* :mod:`repro.core.encoders` — the field encoders of Table 1 (CHAR, VARCHAR,
  INT, VARINT) with byte-exact encode/decode and cost models.
* :mod:`repro.core.pattern` — patterns (common subsequence + typed wildcard
  fields) and the pattern dictionary.
* :mod:`repro.core.alignment` — the minimal encoding-length merging dynamic
  programs (the generic Section 4.2 algorithm and the monotonic Algorithm 1/2).
* :mod:`repro.core.distance` — 1-gram distance (Definition 5) and edit distance.
* :mod:`repro.core.criteria` — clustering criteria: encoding length, entropy
  (Section 6) and edit distance (the Figure 7 ablation).
* :mod:`repro.core.clustering` — the agglomerative minimal-EL clustering loop
  with 1-gram pruning (Figure 3, Section 5.1).
* :mod:`repro.core.extraction` — the offline pattern-extraction pipeline
  (sampling, clustering, encoder specialisation; Figure 1a).
* :mod:`repro.core.matcher` — multi-pattern matching with longest-pattern-wins
  (the Hyperscan substitute; Figure 1b).
* :mod:`repro.core.compressor` — per-record compression/decompression, outlier
  handling and the PBC / PBC_F / PBC_Z / PBC_L variants (Figure 1b/c).
"""

from repro.core.encoders import (
    CharEncoder,
    FieldEncoder,
    IntEncoder,
    VarcharEncoder,
    VarintEncoder,
    select_encoder,
)
from repro.core.pattern import Pattern, PatternDictionary, WILDCARD
from repro.core.extraction import PatternExtractor, ExtractionConfig
from repro.core.compressor import (
    PBCCompressor,
    PBCFCompressor,
    PBCBlockCompressor,
    CompressionStats,
)
from repro.core.matcher import MultiPatternMatcher

__all__ = [
    "CharEncoder",
    "CompressionStats",
    "ExtractionConfig",
    "FieldEncoder",
    "IntEncoder",
    "MultiPatternMatcher",
    "PBCBlockCompressor",
    "PBCCompressor",
    "PBCFCompressor",
    "Pattern",
    "PatternDictionary",
    "PatternExtractor",
    "VarcharEncoder",
    "VarintEncoder",
    "WILDCARD",
    "select_encoder",
]
