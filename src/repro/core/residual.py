"""Residual entropy codecs: the "further compression" stage of Table 1.

Section 5.2 of the paper offers two options for squeezing the residual
subsequences further once the pattern has been factored out: (1) per-record
entropy or symbol-table encoders (Huffman, FSST) that preserve random access,
and (2) block-wise codecs (Zstd, LZMA) that trade random access for ratio.
Option (2) is covered by :class:`repro.core.compressor.PBCBlockCompressor`;
this module implements option (1) beyond FSST.

All codecs here satisfy the :class:`repro.core.compressor.ResidualCodec`
protocol (``compress`` / ``decompress`` over ``bytes``) and operate on the
*encoded field payload* of a single record, so the per-record property — and
therefore random access — is preserved.

To avoid paying a frequency-table header on every (short) record, the
shared-model codecs are trained once on the training sample's payloads and the
model is stored with the compressor, mirroring how the pattern dictionary and
the FSST symbol table are handled.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.entropy.arithmetic import BitTreeModel, arithmetic_decode, arithmetic_encode
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.huffman import build_canonical_code
from repro.entropy.rans import RansModel, rans_decode, rans_encode
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import CompressorError, DecodingError

#: Escape marker prepended when a payload is stored raw (e.g. it would expand).
_RAW_MARKER = 0
_ENCODED_MARKER = 1


class SharedRansResidualCodec:
    """Residual codec backed by a shared (trained) rANS model.

    The model covers the full byte alphabet (unseen symbols get frequency one)
    so any record remains encodable after training.  Each compressed payload is
    ``marker + uvarint(length) + rANS stream``; when entropy coding would
    expand the payload it is stored raw behind the escape marker instead.
    """

    name = "rans-residual"

    def __init__(self, model: RansModel | None = None) -> None:
        self._model = model

    @property
    def is_trained(self) -> bool:
        """Whether a model is installed."""
        return self._model is not None

    @property
    def model(self) -> RansModel:
        """The installed model."""
        self._require_trained()
        assert self._model is not None
        return self._model

    def train(self, payloads: Iterable[bytes]) -> None:
        """Fit the shared model on the training payloads."""
        self._model = RansModel.from_samples(payloads, extra_symbols=range(256))

    def _require_trained(self) -> None:
        if self._model is None:
            raise CompressorError(f"{self.name} must be trained before use")

    def compress(self, data: bytes) -> bytes:
        """Entropy-code ``data`` with the shared model (raw fallback on expansion)."""
        self._require_trained()
        assert self._model is not None
        if not data:
            return bytes([_ENCODED_MARKER]) + encode_uvarint(0)
        encoded = rans_encode(data, self._model)
        framed = bytes([_ENCODED_MARKER]) + encode_uvarint(len(data)) + encoded
        if len(framed) >= len(data) + 1:
            return bytes([_RAW_MARKER]) + data
        return framed

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        self._require_trained()
        assert self._model is not None
        if not data:
            raise DecodingError("empty residual payload")
        marker, body = data[0], data[1:]
        if marker == _RAW_MARKER:
            return body
        if marker != _ENCODED_MARKER:
            raise DecodingError(f"unknown residual marker {marker}")
        length, offset = decode_uvarint(body, 0)
        return rans_decode(body[offset:], length, self._model)


class SharedHuffmanResidualCodec:
    """Residual codec backed by a shared canonical Huffman code.

    This is the paper's literal suggestion ("entropy encoding techniques
    (e.g., Huffman coding)") for residual subsequences.  The code covers the
    full byte alphabet so any record remains encodable.
    """

    name = "huffman-residual"

    def __init__(self) -> None:
        self._codes: dict[int, tuple[int, int]] | None = None
        self._decode_table: dict[tuple[int, int], int] | None = None
        self._max_length = 0

    @property
    def is_trained(self) -> bool:
        """Whether a code table is installed."""
        return self._codes is not None

    def train(self, payloads: Iterable[bytes]) -> None:
        """Build the shared canonical code from the training payloads."""
        counts: Counter[int] = Counter()
        for payload in payloads:
            counts.update(payload)
        for symbol in range(256):
            if counts[symbol] == 0:
                counts[symbol] = 1
        code = build_canonical_code(dict(counts))
        self._codes = code.codes
        self._decode_table = {value: symbol for symbol, value in code.codes.items()}
        self._max_length = max(length for _, length in code.codes.values())

    def _require_trained(self) -> None:
        if self._codes is None:
            raise CompressorError(f"{self.name} must be trained before use")

    def compress(self, data: bytes) -> bytes:
        """Huffman-code ``data`` with the shared table (raw fallback on expansion)."""
        self._require_trained()
        assert self._codes is not None
        if not data:
            return bytes([_ENCODED_MARKER]) + encode_uvarint(0)
        writer = BitWriter()
        for byte in data:
            word, width = self._codes[byte]
            writer.write_bits(word, width)
        framed = bytes([_ENCODED_MARKER]) + encode_uvarint(len(data)) + writer.getvalue()
        if len(framed) >= len(data) + 1:
            return bytes([_RAW_MARKER]) + data
        return framed

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        self._require_trained()
        assert self._decode_table is not None
        if not data:
            raise DecodingError("empty residual payload")
        marker, body = data[0], data[1:]
        if marker == _RAW_MARKER:
            return body
        if marker != _ENCODED_MARKER:
            raise DecodingError(f"unknown residual marker {marker}")
        length, offset = decode_uvarint(body, 0)
        reader = BitReader(body[offset:])
        out = bytearray()
        while len(out) < length:
            word = 0
            width = 0
            while True:
                word = (word << 1) | reader.read_bit()
                width += 1
                symbol = self._decode_table.get((word, width))
                if symbol is not None:
                    out.append(symbol)
                    break
                if width > self._max_length:
                    raise DecodingError("invalid shared Huffman code word")
        return bytes(out)


class AdaptiveArithmeticResidualCodec:
    """Residual codec using a fresh adaptive arithmetic model per record.

    No training step is required; every record is coded independently so random
    access is preserved.  Works best on longer residual payloads where the
    model has room to adapt.
    """

    name = "arith-residual"

    #: Training is a no-op — kept so the codec is interchangeable with the shared-model ones.
    def train(self, payloads: Iterable[bytes]) -> None:  # noqa: D102 - documented above
        del payloads

    @property
    def is_trained(self) -> bool:
        """Adaptive coding never needs training."""
        return True

    def compress(self, data: bytes) -> bytes:
        """Arithmetic-code ``data`` with a fresh model (raw fallback on expansion)."""
        encoded = arithmetic_encode(data, BitTreeModel())
        framed = bytes([_ENCODED_MARKER]) + encode_uvarint(len(data)) + encoded
        if len(framed) >= len(data) + 1 and data:
            return bytes([_RAW_MARKER]) + data
        return framed

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        if not data:
            raise DecodingError("empty residual payload")
        marker, body = data[0], data[1:]
        if marker == _RAW_MARKER:
            return body
        if marker != _ENCODED_MARKER:
            raise DecodingError(f"unknown residual marker {marker}")
        length, offset = decode_uvarint(body, 0)
        return arithmetic_decode(body[offset:], length, BitTreeModel())


#: Registry of residual entropy codecs by short name (used by PBC_H and the CLI).
RESIDUAL_CODECS = {
    "rans": SharedRansResidualCodec,
    "huffman": SharedHuffmanResidualCodec,
    "arithmetic": AdaptiveArithmeticResidualCodec,
}


def make_residual_codec(name: str):
    """Instantiate a residual entropy codec by short name."""
    key = name.lower()
    if key not in RESIDUAL_CODECS:
        raise CompressorError(
            f"unknown residual codec {name!r}; available: {sorted(RESIDUAL_CODECS)}"
        )
    return RESIDUAL_CODECS[key]()


def collect_training_payloads(matcher, records: Sequence[str]) -> list[bytes]:
    """Field payloads (or raw bytes for outliers) of ``records`` under ``matcher``.

    Shared helper for the residual-codec training paths of PBC_F and PBC_H.
    """
    payloads: list[bytes] = []
    for record in records:
        match = matcher.match(record)
        if match is None:
            payloads.append(record.encode("utf-8"))
        else:
            payloads.append(match.pattern.encode_fields(match.field_values))
    return payloads
