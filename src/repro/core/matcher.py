"""Multi-pattern matching with longest-pattern-wins selection (Figure 1b).

The paper uses Hyperscan to match every record against the regular expressions
of all patterns and keeps the longest matching pattern.  This module provides a
pure-Python substitute with the same contract:

* every pattern is compiled to an anchored regex with one capture group per
  field (typed by the field encoder);
* candidate patterns are pre-filtered with a cheap literal-segment containment
  check (all literal segments must occur in the record, in order), which plays
  the role of Hyperscan's literal pre-matching;
* surviving candidates are tried in decreasing order of literal size and the
  first full match wins, which is exactly "select the longest pattern".
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.pattern import Pattern, PatternDictionary


@dataclass(frozen=True)
class MatchResult:
    """A successful pattern match: the pattern and the extracted field values."""

    pattern: Pattern
    field_values: tuple[str, ...]


class _CompiledPattern:
    """A pattern with its compiled regex and pre-filter literals."""

    __slots__ = ("pattern", "regex", "prefix", "suffix", "inner_literals", "literal_size")

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.regex = re.compile(pattern.to_regex(), re.DOTALL)
        literals = pattern.literals
        self.prefix = literals[0]
        self.suffix = literals[-1] if len(literals) > 1 else ""
        self.inner_literals = tuple(segment for segment in literals[1:-1] if segment)
        self.literal_size = pattern.literal_size

    def prefilter(self, record: str) -> bool:
        """Cheap necessary condition for a match (ordered literal containment)."""
        if self.literal_size > len(record):
            return False
        if self.prefix and not record.startswith(self.prefix):
            return False
        if self.suffix and not record.endswith(self.suffix):
            return False
        position = len(self.prefix)
        for segment in self.inner_literals:
            found = record.find(segment, position)
            if found < 0:
                return False
            position = found + len(segment)
        return True

    def match(self, record: str) -> MatchResult | None:
        """Full regex match; returns the extracted field values on success."""
        matched = self.regex.match(record)
        if matched is None:
            return None
        return MatchResult(pattern=self.pattern, field_values=matched.groups())


class MultiPatternMatcher:
    """Matches records against a pattern dictionary, longest pattern first."""

    def __init__(self, dictionary: PatternDictionary) -> None:
        self._compiled = sorted(
            (_CompiledPattern(pattern) for pattern in dictionary),
            key=lambda compiled: compiled.literal_size,
            reverse=True,
        )

    def __len__(self) -> int:
        return len(self._compiled)

    def match(self, record: str) -> MatchResult | None:
        """Return the longest-pattern match for ``record``, or ``None`` (outlier)."""
        for compiled in self._compiled:
            if not compiled.prefilter(record):
                continue
            result = compiled.match(record)
            if result is not None:
                return result
        return None

    def match_all(self, record: str) -> list[MatchResult]:
        """All pattern matches for ``record`` (used by tests and diagnostics)."""
        results = []
        for compiled in self._compiled:
            if not compiled.prefilter(record):
                continue
            result = compiled.match(record)
            if result is not None:
                results.append(result)
        return results
