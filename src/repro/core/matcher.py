"""Multi-pattern matching with longest-pattern-wins selection (Figure 1b).

The paper uses Hyperscan to match every record against the regular expressions
of all patterns and keeps the longest matching pattern.  This module provides a
pure-Python substitute with the same contract:

* every pattern is compiled to an anchored regex with one capture group per
  field (typed by the field encoder);
* candidate patterns are pre-filtered with a cheap literal-segment containment
  check (all literal segments must occur in the record, in order), which plays
  the role of Hyperscan's literal pre-matching;
* surviving candidates are tried in decreasing order of literal size and the
  first full match wins, which is exactly "select the longest pattern".
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.pattern import Pattern, PatternDictionary


@dataclass(frozen=True)
class MatchResult:
    """A successful pattern match: the pattern and the extracted field values."""

    pattern: Pattern
    field_values: tuple[str, ...]


class _CompiledPattern:
    """A pattern with its compiled regex and pre-filter literals."""

    __slots__ = ("pattern", "regex", "prefix", "suffix", "inner_literals", "literal_size")

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.regex = re.compile(pattern.to_regex(), re.DOTALL)
        literals = pattern.literals
        self.prefix = literals[0]
        self.suffix = literals[-1] if len(literals) > 1 else ""
        self.inner_literals = tuple(segment for segment in literals[1:-1] if segment)
        self.literal_size = pattern.literal_size

    def prefilter(self, record: str) -> bool:
        """Cheap necessary condition for a match (ordered literal containment)."""
        if self.literal_size > len(record):
            return False
        if self.prefix and not record.startswith(self.prefix):
            return False
        if self.suffix and not record.endswith(self.suffix):
            return False
        position = len(self.prefix)
        for segment in self.inner_literals:
            found = record.find(segment, position)
            if found < 0:
                return False
            position = found + len(segment)
        return True

    def match(self, record: str) -> MatchResult | None:
        """Full regex match; returns the extracted field values on success."""
        matched = self.regex.match(record)
        if matched is None:
            return None
        return MatchResult(pattern=self.pattern, field_values=matched.groups())


class MultiPatternMatcher:
    """Matches records against a pattern dictionary, longest pattern first.

    Two optimizations on top of the straight prefilter-every-pattern loop
    (both preserved behaviourally — the committed ``matcher_candidate_index``
    benchmark row pairs this class against the original loop, kept in
    :class:`repro.bench.hotpaths.LegacyMatcher`):

    * **candidate index** — patterns are bucketed by the first character of
      their literal prefix.  A record can only match a pattern whose prefix
      starts with the record's first character (or whose prefix is empty),
      so one dict lookup replaces most of the per-pattern ``startswith``
      prefilters.  Bucket lists are built from the globally sorted pattern
      list, so longest-pattern-wins order is preserved exactly.
    * **match memo** — machine-generated streams repeat records heavily
      (Section 2's observation that log/telemetry data is template-shaped),
      so up to ``memo_entries`` distinct records memoize their
      :class:`MatchResult`.  The memo is cleared wholesale when full, which
      bounds memory without LRU bookkeeping.  ``memo_entries=0`` disables
      memoization (the dictionary is immutable after construction, so a
      memoized result can never go stale).
    """

    #: default bound on distinct records memoized per matcher.
    DEFAULT_MEMO_ENTRIES = 4096

    def __init__(
        self, dictionary: PatternDictionary, memo_entries: int = DEFAULT_MEMO_ENTRIES
    ) -> None:
        self._compiled = sorted(
            (_CompiledPattern(pattern) for pattern in dictionary),
            key=lambda compiled: compiled.literal_size,
            reverse=True,
        )
        # Patterns with no prefix literal can match any first character, so
        # they appear in every bucket and form the empty-record fallback.
        unprefixed = tuple(
            compiled for compiled in self._compiled if not compiled.prefix
        )
        self._candidates: dict[str, tuple[_CompiledPattern, ...]] = {}
        for first in {compiled.prefix[0] for compiled in self._compiled if compiled.prefix}:
            self._candidates[first] = tuple(
                compiled
                for compiled in self._compiled
                if not compiled.prefix or compiled.prefix[0] == first
            )
        self._unprefixed = unprefixed
        self._memo_entries = max(0, memo_entries)
        self._memo: dict[str, MatchResult | None] = {}

    def __len__(self) -> int:
        return len(self._compiled)

    def match(self, record: str) -> MatchResult | None:
        """Return the longest-pattern match for ``record``, or ``None`` (outlier)."""
        memo = self._memo
        if self._memo_entries:
            try:
                return memo[record]
            except KeyError:
                pass
        candidates = (
            self._candidates.get(record[0], self._unprefixed)
            if record
            else self._unprefixed
        )
        result = None
        for compiled in candidates:
            if not compiled.prefilter(record):
                continue
            result = compiled.match(record)
            if result is not None:
                break
        if self._memo_entries:
            if len(memo) >= self._memo_entries:
                memo.clear()
            memo[record] = result
        return result

    def match_all(self, record: str) -> list[MatchResult]:
        """All pattern matches for ``record`` (used by tests and diagnostics)."""
        results = []
        for compiled in self._compiled:
            if not compiled.prefilter(record):
                continue
            result = compiled.match(record)
            if result is not None:
                results.append(result)
        return results
