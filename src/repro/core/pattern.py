"""Patterns, token sequences and the pattern dictionary.

A *pattern* (Section 3.2, Example 1) is a common subsequence of the records in a
cluster with wildcard fields in the gaps: ``Pat(c) = {p, L}`` where ``p`` is the
literal/wildcard token sequence and ``L`` the list of field encoders.  The
canonical storage form used here interleaves literal segments and typed fields:

    record = literals[0] + field_0 + literals[1] + field_1 + ... + literals[k]

with ``len(literals) == len(encoders) + 1``.

During clustering patterns are manipulated as flat *token sequences*: a list
whose elements are single characters (literals) or the :data:`WILDCARD`
sentinel.  Helper functions convert between the two representations.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.encoders import FieldEncoder, VarcharEncoder, encoder_from_spec
from repro.exceptions import DictionaryError, PatternError

#: Sentinel token representing a wildcard field inside a token sequence.  ``None``
#: is used (rather than ``"*"``) so literal asterisks in the data stay unambiguous.
WILDCARD = None

#: Pattern id reserved for records that match no pattern and are stored raw.
OUTLIER_PATTERN_ID = 0


def tokens_from_string(text: str) -> list[str | None]:
    """Token sequence for a raw record: every character is a literal."""
    return list(text)


def tokens_to_display(tokens: Sequence[str | None]) -> str:
    """Human-readable form of a token sequence (wildcards rendered as ``*``)."""
    return "".join("*" if token is WILDCARD else token for token in tokens)


def collapse_wildcards(tokens: Iterable[str | None]) -> list[str | None]:
    """Collapse runs of consecutive wildcards into a single wildcard token."""
    collapsed: list[str | None] = []
    for token in tokens:
        if token is WILDCARD and collapsed and collapsed[-1] is WILDCARD:
            continue
        collapsed.append(token)
    return collapsed


def tokens_to_segments(tokens: Sequence[str | None]) -> tuple[list[str], int]:
    """Split a token sequence into literal segments around wildcard fields.

    Returns ``(literals, field_count)`` where ``len(literals) == field_count + 1``.
    """
    literals: list[str] = []
    current: list[str] = []
    field_count = 0
    previous_was_wildcard = False
    for token in tokens:
        if token is WILDCARD:
            if previous_was_wildcard:
                continue
            literals.append("".join(current))
            current = []
            field_count += 1
            previous_was_wildcard = True
        else:
            current.append(token)
            previous_was_wildcard = False
    literals.append("".join(current))
    return literals, field_count


def literal_length(tokens: Sequence[str | None]) -> int:
    """Number of literal characters in a token sequence."""
    return sum(1 for token in tokens if token is not WILDCARD)


@dataclass(frozen=True)
class Pattern:
    """A fully specified pattern: literal segments plus one encoder per field."""

    pattern_id: int
    literals: tuple[str, ...]
    encoders: tuple[FieldEncoder, ...]

    def __post_init__(self) -> None:
        if len(self.literals) != len(self.encoders) + 1:
            raise PatternError(
                f"pattern {self.pattern_id}: {len(self.literals)} literal segments "
                f"require {len(self.literals) - 1} encoders, got {len(self.encoders)}"
            )
        if self.pattern_id < 0:
            raise PatternError("pattern id must be non-negative")

    @property
    def field_count(self) -> int:
        """Number of wildcard fields."""
        return len(self.encoders)

    @property
    def literal_size(self) -> int:
        """Total number of literal characters (the paper's pattern length)."""
        return sum(len(segment) for segment in self.literals)

    def display(self) -> str:
        """Render the pattern in the paper's ``literal*<ENCODER>literal`` notation."""
        parts: list[str] = [self.literals[0]]
        for encoder, segment in zip(self.encoders, self.literals[1:]):
            parts.append(f"*<{encoder.spec()}>")
            parts.append(segment)
        return "".join(parts)

    def to_regex(self) -> str:
        """Anchored regex with one capture group per field."""
        parts = ["^", re.escape(self.literals[0])]
        for encoder, segment in zip(self.encoders, self.literals[1:]):
            parts.append(encoder.regex_fragment())
            parts.append(re.escape(segment))
        parts.append("$")
        return "".join(parts)

    def reconstruct(self, field_values: Sequence[str]) -> str:
        """Rebuild the original record from decoded field values (Figure 1c)."""
        if len(field_values) != self.field_count:
            raise PatternError(
                f"pattern {self.pattern_id} expects {self.field_count} fields, "
                f"got {len(field_values)}"
            )
        parts = [self.literals[0]]
        for value, segment in zip(field_values, self.literals[1:]):
            parts.append(value)
            parts.append(segment)
        return "".join(parts)

    def encode_fields(self, field_values: Sequence[str]) -> bytes:
        """Encode all field values with their per-field encoders."""
        if len(field_values) != self.field_count:
            raise PatternError(
                f"pattern {self.pattern_id} expects {self.field_count} fields, "
                f"got {len(field_values)}"
            )
        out = bytearray()
        for encoder, value in zip(self.encoders, field_values):
            out += encoder.encode(value)
        return bytes(out)

    def decode_fields(self, data: bytes, offset: int = 0) -> tuple[list[str], int]:
        """Decode all field values; returns ``(values, next_offset)``."""
        values: list[str] = []
        for encoder in self.encoders:
            value, offset = encoder.decode(data, offset)
            values.append(value)
        return values, offset

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the dictionary persistence)."""
        return {
            "id": self.pattern_id,
            "literals": list(self.literals),
            "encoders": [encoder.spec() for encoder in self.encoders],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Pattern":
        """Inverse of :meth:`to_dict`."""
        return cls(
            pattern_id=int(payload["id"]),
            literals=tuple(payload["literals"]),
            encoders=tuple(encoder_from_spec(spec) for spec in payload["encoders"]),
        )

    @classmethod
    def from_tokens(
        cls,
        pattern_id: int,
        tokens: Sequence[str | None],
        encoders: Sequence[FieldEncoder] | None = None,
    ) -> "Pattern":
        """Build a pattern from a token sequence; defaults every field to VARCHAR."""
        literals, field_count = tokens_to_segments(tokens)
        if encoders is None:
            encoders = [VarcharEncoder() for _ in range(field_count)]
        return cls(pattern_id=pattern_id, literals=tuple(literals), encoders=tuple(encoders))


@dataclass
class PatternDictionary:
    """Maps pattern ids to patterns (Figure 1: the offline-built dictionary).

    Pattern id 0 is reserved for outlier records stored raw; real patterns get
    ids starting at 1.
    """

    patterns: dict[int, Pattern] = field(default_factory=dict)

    def add(self, pattern: Pattern) -> None:
        """Register a pattern; rejects the reserved id and duplicates."""
        if pattern.pattern_id == OUTLIER_PATTERN_ID:
            raise DictionaryError("pattern id 0 is reserved for outliers")
        if pattern.pattern_id in self.patterns:
            raise DictionaryError(f"duplicate pattern id {pattern.pattern_id}")
        self.patterns[pattern.pattern_id] = pattern

    def get(self, pattern_id: int) -> Pattern:
        """Look up a pattern by id."""
        try:
            return self.patterns[pattern_id]
        except KeyError as error:
            raise DictionaryError(f"unknown pattern id {pattern_id}") from error

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self.patterns.values())

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self.patterns

    @property
    def next_id(self) -> int:
        """Smallest unused non-reserved pattern id."""
        return max(self.patterns, default=OUTLIER_PATTERN_ID) + 1

    def serialized_size(self) -> int:
        """Approximate on-disk size of the dictionary in bytes."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialise the dictionary (JSON payload; compact but human-inspectable)."""
        payload = [pattern.to_dict() for pattern in self.patterns.values()]
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PatternDictionary":
        """Inverse of :meth:`to_bytes`."""
        dictionary = cls()
        for item in json.loads(data.decode("utf-8")):
            dictionary.add(Pattern.from_dict(item))
        return dictionary
