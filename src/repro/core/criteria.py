"""Clustering criteria: encoding length, entropy, and edit distance.

The agglomerative loop in :mod:`repro.core.clustering` is criterion-agnostic: it
repeatedly merges the pair of clusters with the smallest *score* according to a
:class:`MergeCriterion`.  Three criteria are provided, matching the Figure 7
ablation of the paper:

* :class:`EncodingLengthCriterion` — the paper's contribution (Problem 2):
  the minimal encoding-length increment computed by the monotonic DP.
* :class:`EntropyCriterion` — the Section 6 formulation (Problem 4): the change
  in total residual symbol occurrences, i.e. ``L' - L`` of Equation 9.
* :class:`EditDistanceCriterion` — the naive baseline: Levenshtein distance
  between the two cluster patterns.

All criteria return, besides the score, the merged pattern token sequence so
the clustering loop can update the winning cluster without recomputation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.alignment import monotonic_merge
from repro.core.distance import edit_distance, one_gram_distance_counters
from repro.core.pattern import literal_length


class ClusterState:
    """Mutable bookkeeping for one cluster during agglomerative clustering."""

    __slots__ = ("tokens", "members", "size", "counter", "encoding_length", "total_record_length")

    def __init__(self, tokens: list, members: list[int], size: int, counter, total_record_length: int) -> None:
        self.tokens = tokens
        self.members = members
        self.size = size
        self.counter = counter
        self.encoding_length = 0
        self.total_record_length = total_record_length

    @property
    def residual_occurrences(self) -> int:
        """Total number of residual symbol occurrences over all member records."""
        return self.total_record_length - self.size * literal_length(self.tokens)


class MergeCriterion(ABC):
    """Scores candidate merges; lower is better (merged first)."""

    #: short name used in reports (Figure 7 x-axis labels).
    name: str = "criterion"

    @abstractmethod
    def score(self, cluster_a: ClusterState, cluster_b: ClusterState) -> tuple[float, list]:
        """Return ``(score, merged_tokens)`` for merging the two clusters."""

    def lower_bound(self, cluster_a: ClusterState, cluster_b: ClusterState) -> float:
        """Cheap lower bound on :meth:`score`; used for pruning.  Defaults to -inf."""
        return float("-inf")

    def supports_bounded_search(self) -> bool:
        """Whether :meth:`lower_bound` is meaningful for this criterion."""
        return False


class EncodingLengthCriterion(MergeCriterion):
    """The paper's minimal encoding-length increment (Definition 3, Algorithm 1)."""

    name = "el"

    def score(self, cluster_a: ClusterState, cluster_b: ClusterState) -> tuple[float, list]:
        result = monotonic_merge(cluster_a.tokens, cluster_b.tokens, cluster_a.size, cluster_b.size)
        return float(result.increment), result.tokens

    def lower_bound(self, cluster_a: ClusterState, cluster_b: ClusterState) -> float:
        # The 1-gram distance counts symbols that cannot possibly stay in the
        # merged pattern; every such symbol costs at least one residual byte for
        # at least one record, so it lower-bounds the EL increment.
        return float(one_gram_distance_counters(cluster_a.counter, cluster_b.counter))

    def supports_bounded_search(self) -> bool:
        return True


class EntropyCriterion(MergeCriterion):
    """The Section 6 entropy criterion: growth of residual symbol occurrences.

    Equation 9 reduces the discriminant to ``L' - L`` where ``L`` (``L'``) is the
    number of residual symbol occurrences before (after) the merge; symbols that
    drop out of the pattern become residual occurrences for every record of the
    cluster that loses them.
    """

    name = "entropy"

    def score(self, cluster_a: ClusterState, cluster_b: ClusterState) -> tuple[float, list]:
        result = monotonic_merge(cluster_a.tokens, cluster_b.tokens, cluster_a.size, cluster_b.size)
        merged_literals = literal_length(result.tokens)
        occurrences_before = cluster_a.residual_occurrences + cluster_b.residual_occurrences
        occurrences_after = (
            cluster_a.total_record_length
            + cluster_b.total_record_length
            - (cluster_a.size + cluster_b.size) * merged_literals
        )
        return float(occurrences_after - occurrences_before), result.tokens


class EditDistanceCriterion(MergeCriterion):
    """Naive baseline: plain Levenshtein distance between the cluster patterns."""

    name = "ed"

    def score(self, cluster_a: ClusterState, cluster_b: ClusterState) -> tuple[float, list]:
        distance = edit_distance(cluster_a.tokens, cluster_b.tokens)
        result = monotonic_merge(cluster_a.tokens, cluster_b.tokens, cluster_a.size, cluster_b.size)
        return float(distance), result.tokens


_CRITERIA = {
    "el": EncodingLengthCriterion,
    "entropy": EntropyCriterion,
    "ed": EditDistanceCriterion,
}


def make_criterion(name: str) -> MergeCriterion:
    """Instantiate a criterion by short name (``"el"``, ``"entropy"``, ``"ed"``)."""
    try:
        return _CRITERIA[name]()
    except KeyError as error:
        raise ValueError(f"unknown clustering criterion {name!r}; expected one of {sorted(_CRITERIA)}") from error
