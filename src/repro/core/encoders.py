"""Field encoders for residual subsequences (Table 1 of the paper).

Each wildcard field of a pattern is associated with one encoder.  The encoder
determines three things:

* the byte format used to store the field value of every record in the cluster,
* the storage *cost* of a value (used by the encoding-length model of Section 4),
* the regular-expression fragment that the multi-pattern matcher uses to decide
  whether a record can instantiate the field (Figure 1b).

Encoders are value objects: they carry only their parameters, are hashable and
can be serialised to a compact spec string for the on-disk pattern dictionary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.entropy.varint import decode_uvarint, encode_uvarint, uvarint_size
from repro.exceptions import DecodingError, EncodingError


def _int_byte_width(digit_count: int) -> int:
    """Number of bytes needed to store any ``digit_count``-digit decimal value."""
    return max(1, ((10**digit_count - 1).bit_length() + 7) // 8)


class FieldEncoder(ABC):
    """Base class for field encoders.

    Concrete encoders implement :meth:`can_encode`, :meth:`encode`,
    :meth:`decode` and :meth:`cost`; the rest of the library treats them
    uniformly through this interface.
    """

    #: short mnemonic used in spec strings and reports (e.g. ``"VARCHAR"``).
    name: str = "FIELD"

    @abstractmethod
    def can_encode(self, value: str) -> bool:
        """Return True if ``value`` is representable by this encoder."""

    @abstractmethod
    def encode(self, value: str) -> bytes:
        """Encode ``value``; raises :class:`EncodingError` if not representable."""

    @abstractmethod
    def decode(self, data: bytes, offset: int) -> tuple[str, int]:
        """Decode one value starting at ``offset``; returns ``(value, next_offset)``."""

    @abstractmethod
    def cost(self, value: str) -> int:
        """Number of bytes :meth:`encode` would produce for ``value``."""

    @abstractmethod
    def regex_fragment(self) -> str:
        """Regex capture group matching any value this encoder accepts."""

    @abstractmethod
    def spec(self) -> str:
        """Compact textual spec, e.g. ``"INT(6,3)"``; parsed by :func:`encoder_from_spec`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.spec()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FieldEncoder) and self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())


class VarcharEncoder(FieldEncoder):
    """Variable-length character field: varint length header + raw bytes."""

    name = "VARCHAR"

    def can_encode(self, value: str) -> bool:
        return True

    def encode(self, value: str) -> bytes:
        payload = value.encode("utf-8")
        return encode_uvarint(len(payload)) + payload

    def decode(self, data: bytes, offset: int) -> tuple[str, int]:
        length, offset = decode_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise DecodingError("truncated VARCHAR payload")
        return data[offset:end].decode("utf-8"), end

    def cost(self, value: str) -> int:
        payload_len = len(value.encode("utf-8"))
        return uvarint_size(payload_len) + payload_len

    def regex_fragment(self) -> str:
        return "(.*?)"

    def spec(self) -> str:
        return "VARCHAR"


class CharEncoder(FieldEncoder):
    """Fixed-length character field: exactly ``length`` characters, no header."""

    name = "CHAR"

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError("CHAR length must be non-negative")
        self.length = length

    def can_encode(self, value: str) -> bool:
        return len(value) == self.length and len(value.encode("utf-8")) == self.length

    def encode(self, value: str) -> bytes:
        if not self.can_encode(value):
            raise EncodingError(f"CHAR({self.length}) cannot encode {value!r}")
        return value.encode("utf-8")

    def decode(self, data: bytes, offset: int) -> tuple[str, int]:
        end = offset + self.length
        if end > len(data):
            raise DecodingError("truncated CHAR payload")
        return data[offset:end].decode("utf-8"), end

    def cost(self, value: str) -> int:
        return self.length

    def regex_fragment(self) -> str:
        return "(.{%d})" % self.length

    def spec(self) -> str:
        return f"CHAR({self.length})"


class IntEncoder(FieldEncoder):
    """Fixed-length digit field stored as a fixed-width big-endian integer.

    ``INT(n, m)`` in the paper's notation: the field is always exactly ``n``
    decimal digits (leading zeros allowed) and is stored in ``m`` bytes.
    """

    name = "INT"

    def __init__(self, digits: int, width: int | None = None) -> None:
        if digits <= 0:
            raise ValueError("INT digit count must be positive")
        self.digits = digits
        self.width = width if width is not None else _int_byte_width(digits)
        if self.width < _int_byte_width(digits):
            raise ValueError(
                f"INT({digits}) needs at least {_int_byte_width(digits)} bytes, got {self.width}"
            )

    def can_encode(self, value: str) -> bool:
        return len(value) == self.digits and value.isascii() and value.isdigit()

    def encode(self, value: str) -> bytes:
        if not self.can_encode(value):
            raise EncodingError(f"INT({self.digits},{self.width}) cannot encode {value!r}")
        return int(value).to_bytes(self.width, "big")

    def decode(self, data: bytes, offset: int) -> tuple[str, int]:
        end = offset + self.width
        if end > len(data):
            raise DecodingError("truncated INT payload")
        number = int.from_bytes(data[offset:end], "big")
        return str(number).zfill(self.digits), end

    def cost(self, value: str) -> int:
        return self.width

    def regex_fragment(self) -> str:
        return r"(\d{%d})" % self.digits

    def spec(self) -> str:
        return f"INT({self.digits},{self.width})"


class VarintEncoder(FieldEncoder):
    """Variable-length digit field without leading zeros, stored as a LEB128 varint."""

    name = "VARINT"

    def can_encode(self, value: str) -> bool:
        if not value or not value.isascii() or not value.isdigit():
            return False
        # Leading zeros cannot be restored from the integer value, so reject them.
        return value == "0" or value[0] != "0"

    def encode(self, value: str) -> bytes:
        if not self.can_encode(value):
            raise EncodingError(f"VARINT cannot encode {value!r}")
        return encode_uvarint(int(value))

    def decode(self, data: bytes, offset: int) -> tuple[str, int]:
        number, offset = decode_uvarint(data, offset)
        return str(number), offset

    def cost(self, value: str) -> int:
        return uvarint_size(int(value))

    def regex_fragment(self) -> str:
        return r"(0|[1-9]\d*)"

    def spec(self) -> str:
        return "VARINT"


#: Default encoder set |F| used by pattern extraction (Definition 2).
DEFAULT_ENCODER_FAMILY: tuple[str, ...] = ("INT", "VARINT", "CHAR", "VARCHAR")


def encoder_from_spec(spec: str) -> FieldEncoder:
    """Parse a spec string produced by :meth:`FieldEncoder.spec`."""
    spec = spec.strip()
    if spec == "VARCHAR":
        return VarcharEncoder()
    if spec == "VARINT":
        return VarintEncoder()
    if spec.startswith("CHAR(") and spec.endswith(")"):
        return CharEncoder(int(spec[5:-1]))
    if spec.startswith("INT(") and spec.endswith(")"):
        digits_text, width_text = spec[4:-1].split(",")
        return IntEncoder(int(digits_text), int(width_text))
    raise ValueError(f"unknown encoder spec {spec!r}")


def candidate_encoders(values: Sequence[str]) -> list[FieldEncoder]:
    """Enumerate the encoders that can represent every value in ``values``."""
    candidates: list[FieldEncoder] = [VarcharEncoder()]
    if not values:
        return candidates
    lengths = {len(value) for value in values}
    all_digits = all(value.isascii() and value.isdigit() and value for value in values)
    if len(lengths) == 1:
        length = next(iter(lengths))
        if length > 0 and all(len(value.encode("utf-8")) == length for value in values):
            candidates.append(CharEncoder(length))
        if all_digits and length > 0:
            candidates.append(IntEncoder(length))
    if all_digits and all(value == "0" or value[0] != "0" for value in values):
        candidates.append(VarintEncoder())
    return candidates


def select_encoder(values: Sequence[str]) -> FieldEncoder:
    """Pick the optimal encoder for a field (minimal total cost over ``values``).

    This realises the "optimal encoding function" of Definition 2 for one field:
    among the encoders that can represent every observed value, the one with the
    smallest total encoded size is selected.  Ties are broken in favour of the
    more specific encoder (INT before VARINT before CHAR before VARCHAR) so that
    decompression stays branch-free.
    """
    ordering = {"INT": 0, "VARINT": 1, "CHAR": 2, "VARCHAR": 3}
    best: FieldEncoder | None = None
    best_key: tuple[int, int] | None = None
    for encoder in candidate_encoders(values):
        total = sum(encoder.cost(value) for value in values)
        key = (total, ordering[encoder.name])
        if best_key is None or key < best_key:
            best, best_key = encoder, key
    assert best is not None  # VARCHAR is always a candidate
    return best
