"""Seekable stream container format (the on-disk substrate of ``repro.stream``).

A stream container holds a sequence of independently decompressible *frames*,
each covering a contiguous run of records, plus a footer index that lets a
reader binary-search to the frame containing any record index without touching
the preceding frames.  The layout is RocksDB/Zstd-seekable-format inspired:

    +----------------------------------------------------------------------+
    | header  | magic ``RPSTRM01`` (8) | version u8 | flags u8             |
    +----------------------------------------------------------------------+
    | frame 0 | codec_id u8                                                |
    |         | uvarint(len(dict)) + dict payload (trained dictionary)     |
    |         | uvarint(record_count)                                      |
    |         | uvarint(len(body)) + body (codec-compressed record block)  |
    |         | crc32 u32-be over everything above (header fields + body)  |
    +----------------------------------------------------------------------+
    | frame 1 | ...                                                        |
    +----------------------------------------------------------------------+
    | footer  | uvarint(frame_count)                                       |
    |         | per frame: uvarint(offset) uvarint(length)                 |
    |         |            uvarint(first_record) uvarint(record_count)     |
    |         |            codec_id u8                                     |
    +----------------------------------------------------------------------+
    | trailer | footer_offset u64-be | crc32(footer) u32-be | ``RSE1`` (4) |
    +----------------------------------------------------------------------+

Design notes:

* Every frame is self-contained: its codec id and the trained dictionary
  (pattern dictionary, Zstd dictionary, FSST symbol table, ...) travel with
  the frame, so frames written with different codecs — the adaptive pipeline
  does exactly that — coexist in one file and any frame can be decoded in
  isolation (including by a parallel reader).
* The footer stores cumulative ``first_record`` indices, so ``get(i)`` is a
  ``bisect`` over the index followed by a single frame read + decompress.
* Integrity: each frame and the footer carry a CRC32; a mismatch raises
  :class:`repro.exceptions.FrameCorruptionError` instead of yielding garbage.
* Writers only ever append, so the format works on non-seekable sinks; readers
  need a seekable file (they start from the fixed-size trailer at the end).

The uncompressed *record block* layout shared by every codec is
``uvarint(count)`` followed by length-prefixed UTF-8 records — the same shape
:class:`repro.blockstore.BlockStore` and :class:`~repro.core.compressor.PBCBlockCompressor`
use, which is what makes the :mod:`repro.stream.adapter` interop possible.
"""

from __future__ import annotations

import io
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Sequence

from repro.codecs.base import pack_records, unpack_records
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import FrameCorruptionError, StreamFormatError

__all__ = [
    "FrameInfo",
    "MAGIC",
    "END_MAGIC",
    "RawFrame",
    "StreamContainerReader",
    "StreamContainerWriter",
    "decode_frame",
    "encode_frame",
    "pack_records",
    "unpack_records",
]

#: Magic bytes opening every stream container file.
MAGIC = b"RPSTRM01"

#: Magic bytes closing the trailer (cheap "is this even a stream file" probe).
END_MAGIC = b"RSE1"

#: Current container format version.
VERSION = 1

#: Header size: magic + version byte + flags byte.
HEADER_SIZE = len(MAGIC) + 2

#: Trailer size: footer offset (8) + footer CRC (4) + end magic (4).
TRAILER_SIZE = 8 + 4 + len(END_MAGIC)


# ------------------------------------------------------------- record blocks


# pack_records / unpack_records moved to repro.codecs.base (the registry owns
# the shared record-block layout); re-exported above for existing importers.


# -------------------------------------------------------------------- frames


@dataclass(frozen=True)
class FrameInfo:
    """Footer index entry describing one frame."""

    codec_id: int
    offset: int  # absolute byte offset of the frame in the file
    length: int  # total frame size in bytes (header + body + CRC)
    first_record: int  # index of the first record covered by this frame
    record_count: int

    @property
    def end_record(self) -> int:
        """One past the last record index covered by this frame."""
        return self.first_record + self.record_count


@dataclass(frozen=True)
class RawFrame:
    """A frame as read back from disk, before codec decoding."""

    codec_id: int
    dict_payload: bytes
    body: bytes
    record_count: int


def encode_frame(codec_id: int, dict_payload: bytes, body: bytes, record_count: int) -> bytes:
    """Serialise one frame (header + body + CRC32)."""
    if not 0 <= codec_id <= 0xFF:
        raise StreamFormatError(f"codec id {codec_id} does not fit in one byte")
    out = bytearray()
    out.append(codec_id)
    out += encode_uvarint(len(dict_payload))
    out += dict_payload
    out += encode_uvarint(record_count)
    out += encode_uvarint(len(body))
    out += body
    out += (zlib.crc32(out) & 0xFFFFFFFF).to_bytes(4, "big")
    return bytes(out)


def decode_frame(data: bytes, verify: bool = True) -> RawFrame:
    """Parse one serialised frame; ``verify`` checks the trailing CRC32."""
    if len(data) < 5:
        raise StreamFormatError("frame too small to contain a header and CRC")
    if verify:
        stored = int.from_bytes(data[-4:], "big")
        actual = zlib.crc32(data[:-4]) & 0xFFFFFFFF
        if stored != actual:
            raise FrameCorruptionError(
                f"frame CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )
    codec_id = data[0]
    dict_length, offset = decode_uvarint(data, 1)
    dict_end = offset + dict_length
    if dict_end > len(data) - 4:
        raise StreamFormatError("truncated frame dictionary payload")
    dict_payload = data[offset:dict_end]
    record_count, offset = decode_uvarint(data, dict_end)
    body_length, offset = decode_uvarint(data, offset)
    body_end = offset + body_length
    if body_end != len(data) - 4:
        raise StreamFormatError("frame body length does not match the frame size")
    return RawFrame(
        codec_id=codec_id,
        dict_payload=dict_payload,
        body=data[offset:body_end],
        record_count=record_count,
    )


# -------------------------------------------------------------------- writer


class StreamContainerWriter:
    """Append-only writer for the container layout above.

    The writer never seeks, so any binary sink works.  Call
    :meth:`append_frame` with already-compressed frames (the codec layer lives
    in :mod:`repro.stream.framecodecs`), then :meth:`finish` to emit the footer
    index and trailer.
    """

    def __init__(self, sink: BinaryIO) -> None:
        self._sink = sink
        self._frames: list[FrameInfo] = []
        self._records = 0
        self._finished = False
        sink.write(MAGIC)
        sink.write(bytes([VERSION, 0]))
        self._offset = HEADER_SIZE

    @property
    def frames(self) -> list[FrameInfo]:
        """Index entries of the frames appended so far."""
        return list(self._frames)

    @property
    def record_count(self) -> int:
        """Total records covered by the appended frames."""
        return self._records

    def append_frame(self, codec_id: int, dict_payload: bytes, body: bytes, record_count: int) -> FrameInfo:
        """Append one compressed frame and return its index entry."""
        if self._finished:
            raise StreamFormatError("cannot append to a finished stream container")
        if record_count < 1:
            raise StreamFormatError("a frame must cover at least one record")
        payload = encode_frame(codec_id, dict_payload, body, record_count)
        self._sink.write(payload)
        info = FrameInfo(
            codec_id=codec_id,
            offset=self._offset,
            length=len(payload),
            first_record=self._records,
            record_count=record_count,
        )
        self._frames.append(info)
        self._offset += len(payload)
        self._records += record_count
        return info

    def finish(self) -> list[FrameInfo]:
        """Write the footer index and trailer; returns all frame entries."""
        if self._finished:
            raise StreamFormatError("stream container already finished")
        footer = bytearray()
        footer += encode_uvarint(len(self._frames))
        for frame in self._frames:
            footer += encode_uvarint(frame.offset)
            footer += encode_uvarint(frame.length)
            footer += encode_uvarint(frame.first_record)
            footer += encode_uvarint(frame.record_count)
            footer.append(frame.codec_id)
        footer_offset = self._offset
        self._sink.write(bytes(footer))
        self._sink.write(footer_offset.to_bytes(8, "big"))
        self._sink.write((zlib.crc32(bytes(footer)) & 0xFFFFFFFF).to_bytes(4, "big"))
        self._sink.write(END_MAGIC)
        self._offset = footer_offset + len(footer) + TRAILER_SIZE
        self._finished = True
        return list(self._frames)


# -------------------------------------------------------------------- reader


class StreamContainerReader:
    """Random-access reader over a finished stream container file.

    Opening the reader touches only the header, trailer and footer; frames are
    read (and CRC-verified) lazily, one ``seek`` + one ``read`` per frame.
    """

    def __init__(self, source: str | Path | BinaryIO) -> None:
        if isinstance(source, (str, Path)):
            self._file: BinaryIO = open(source, "rb")
            self._owns_file = True
        else:
            self._file = source
            self._owns_file = False
        try:
            self._load_index()
        except Exception:
            if self._owns_file:
                self._file.close()
            raise

    def _load_index(self) -> None:
        handle = self._file
        handle.seek(0, io.SEEK_END)
        file_size = handle.tell()
        if file_size < HEADER_SIZE + TRAILER_SIZE:
            raise StreamFormatError("file too small to be a stream container")
        handle.seek(0)
        header = handle.read(HEADER_SIZE)
        if header[: len(MAGIC)] != MAGIC:
            raise StreamFormatError("not a repro stream container (bad header magic)")
        self.version = header[len(MAGIC)]
        if self.version != VERSION:
            raise StreamFormatError(f"unsupported stream container version {self.version}")
        self.flags = header[len(MAGIC) + 1]
        handle.seek(file_size - TRAILER_SIZE)
        trailer = handle.read(TRAILER_SIZE)
        if trailer[-len(END_MAGIC) :] != END_MAGIC:
            raise StreamFormatError("not a repro stream container (bad trailer magic)")
        footer_offset = int.from_bytes(trailer[0:8], "big")
        footer_crc = int.from_bytes(trailer[8:12], "big")
        if not HEADER_SIZE <= footer_offset <= file_size - TRAILER_SIZE:
            raise StreamFormatError("footer offset outside the file")
        handle.seek(footer_offset)
        footer = handle.read(file_size - TRAILER_SIZE - footer_offset)
        if (zlib.crc32(footer) & 0xFFFFFFFF) != footer_crc:
            raise FrameCorruptionError("footer CRC mismatch")
        frame_count, offset = decode_uvarint(footer, 0)
        self._frames: list[FrameInfo] = []
        expected_first = 0
        for _ in range(frame_count):
            frame_offset, offset = decode_uvarint(footer, offset)
            frame_length, offset = decode_uvarint(footer, offset)
            first_record, offset = decode_uvarint(footer, offset)
            record_count, offset = decode_uvarint(footer, offset)
            codec_id = footer[offset]
            offset += 1
            if first_record != expected_first:
                raise StreamFormatError("footer record indices are not contiguous")
            expected_first += record_count
            self._frames.append(
                FrameInfo(
                    codec_id=codec_id,
                    offset=frame_offset,
                    length=frame_length,
                    first_record=first_record,
                    record_count=record_count,
                )
            )
        self._record_count = expected_first
        self._first_records = [frame.first_record for frame in self._frames]

    # ------------------------------------------------------------------ views

    @property
    def frames(self) -> list[FrameInfo]:
        """Index entries of every frame, in file order."""
        return list(self._frames)

    @property
    def frame_count(self) -> int:
        """Number of frames in the container."""
        return len(self._frames)

    @property
    def record_count(self) -> int:
        """Total number of records in the container."""
        return self._record_count

    def __len__(self) -> int:
        return self._record_count

    def frame_for_record(self, index: int) -> int:
        """Frame position containing record ``index`` (binary search)."""
        if not 0 <= index < self._record_count:
            raise StreamFormatError(
                f"record index {index} out of range (0..{self._record_count - 1})"
            )
        return bisect_right(self._first_records, index) - 1

    def read_frame_bytes(self, position: int) -> bytes:
        """Raw serialised bytes of frame ``position`` (one seek + one read)."""
        if not 0 <= position < len(self._frames):
            raise StreamFormatError(f"frame position {position} out of range")
        frame = self._frames[position]
        self._file.seek(frame.offset)
        payload = self._file.read(frame.length)
        if len(payload) != frame.length:
            raise StreamFormatError(f"frame {position} is truncated on disk")
        return payload

    def read_frame(self, position: int, verify: bool = True) -> RawFrame:
        """Read and parse frame ``position``; CRC-verified unless ``verify=False``."""
        return decode_frame(self.read_frame_bytes(position), verify=verify)

    # ---------------------------------------------------------------- cleanup

    def close(self) -> None:
        """Close the underlying file if this reader opened it."""
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "StreamContainerReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
