"""``repro.stream`` — seekable container format + parallel compression pipeline.

The subsystem that takes the per-record PBC reproduction from in-memory lists
to on-disk, multi-core streams:

* :mod:`repro.stream.format` — the seekable container layout (framed file with
  per-frame codec id, trained dictionary, CRC32 and a footer index),
* :mod:`repro.stream.framecodecs` — the frame codec registry (raw, gzip, lzma,
  Zstd-like, FSST, PBC, PBC_F) with pool-worker entry points,
* :mod:`repro.stream.pipeline` — :class:`StreamWriter` / :class:`StreamReader`
  with thread/process worker pools and order-preserving frame fan-out,
* :mod:`repro.stream.adaptive` — per-frame codec scoring (measured ratio +
  encoding-length estimate) and outlier-rate drift detection,
* :mod:`repro.stream.adapter` — a :class:`~repro.compressors.base.Codec` view
  of standalone frames for :class:`repro.blockstore.BlockStore` and the LSM
  SSTables.

Quick start::

    from repro.stream import StreamConfig, StreamReader, compress_stream

    compress_stream(records, "logs.rps", StreamConfig(codec="adaptive", workers=4))
    with StreamReader("logs.rps") as reader:
        assert reader.get(12345) == records[12345]   # one frame decompressed
"""

from repro.stream.adaptive import (
    AdaptiveCodecSelector,
    AdaptiveConfig,
    AdaptiveState,
    CodecScore,
    FramePlan,
    estimate_pbc_ratio,
)
from repro.stream.adapter import StreamFrameCodec
from repro.stream.format import (
    FrameInfo,
    RawFrame,
    StreamContainerReader,
    StreamContainerWriter,
    pack_records,
    unpack_records,
)
from repro.stream.framecodecs import (
    CompressedFrame,
    compress_frame,
    decompress_frame,
    frame_codec_by_id,
    frame_codec_by_name,
    frame_codec_names,
)
from repro.stream.pipeline import (
    StreamConfig,
    StreamReader,
    StreamSummary,
    StreamWriter,
    compress_stream,
    decompress_stream,
)

__all__ = [
    "AdaptiveCodecSelector",
    "AdaptiveConfig",
    "AdaptiveState",
    "CodecScore",
    "CompressedFrame",
    "FrameInfo",
    "FramePlan",
    "RawFrame",
    "StreamConfig",
    "StreamContainerReader",
    "StreamContainerWriter",
    "StreamFrameCodec",
    "StreamReader",
    "StreamSummary",
    "StreamWriter",
    "compress_frame",
    "compress_stream",
    "decompress_frame",
    "decompress_stream",
    "estimate_pbc_ratio",
    "frame_codec_by_id",
    "frame_codec_by_name",
    "frame_codec_names",
    "pack_records",
    "unpack_records",
]
