"""Adaptive per-frame codec selection with pattern-drift detection.

The paper's PBC wins on machine-generated data whose records share templates;
on data that drifted away from the trained patterns (or was never templated)
a byte-oriented codec — or storing raw — is the better choice.  The stream
pipeline therefore scores candidate frame codecs *per frame* and lets the
winner compress it:

* every candidate compresses a deterministic sample of the frame and is scored
  by its **measured ratio** (stored bytes, trained dictionary included, over
  original bytes),
* pattern-based candidates additionally get an **encoding-length estimate**
  from the :mod:`repro.core.encoding_length` machinery (the Section 4.1 model
  behind the clustering criteria of :mod:`repro.core.criteria`): sampled
  records are matched against the trained dictionary and their residuals are
  priced with optimal per-field encoders, outliers at raw cost.  The blend of
  the two keeps one lucky sample from flipping the choice.

Trained dictionaries (PBC patterns, FSST tables, Zstd prefixes) are built once
on the first frame and reused, so steady-state frames only pay for sampling.
**Drift detection** closes the loop: the selector tracks the outlier rate of
the most recent frames against the installed pattern dictionary and, when the
windowed rate crosses ``drift_threshold``, drops every trained dictionary and
retrains on the current frame (Section 7.5's monitor-and-retrain story).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.codecs.lifecycle import DriftWindow
from repro.core.compressor import PBCCompressor
from repro.core.encoding_length import minimal_encoding_length
from repro.core.pattern import WILDCARD, PatternDictionary
from repro.entropy.varint import uvarint_size
from repro.exceptions import StreamError
from repro.stream.framecodecs import FrameCodec, frame_codec_by_name

#: Candidate codec names tried by default, cheapest-to-score first.
DEFAULT_CANDIDATES: tuple[str, ...] = ("pbc", "pbc_f", "zstd", "fsst", "gzip", "raw")


@dataclass
class AdaptiveConfig:
    """Tuning knobs of the adaptive selector."""

    #: frame codec names competing for each frame.
    candidates: tuple[str, ...] = DEFAULT_CANDIDATES
    #: records sampled per frame for scoring (deterministic stride sample).
    sample_size: int = 64
    #: records from the training frame used to build dictionaries.
    train_size: int = 256
    #: windowed outlier rate that triggers pattern retraining.
    drift_threshold: float = 0.25
    #: number of recent frames the drift window covers.
    drift_window: int = 4
    #: weight of the measured sample ratio vs the encoding-length estimate.
    measured_weight: float = 0.5


@dataclass(frozen=True)
class CodecScore:
    """Scoring outcome of one candidate on one frame sample."""

    name: str
    codec_id: int
    sample_original: int
    sample_stored: int
    estimated_ratio: float | None
    score: float

    @property
    def measured_ratio(self) -> float:
        """Stored bytes (dictionary included) over original sample bytes."""
        if self.sample_original == 0:
            return 1.0
        return self.sample_stored / self.sample_original


@dataclass(frozen=True)
class FramePlan:
    """What the selector decided for one frame."""

    codec_id: int
    codec_name: str
    dict_payload: bytes
    scores: tuple[CodecScore, ...]
    retrained: bool
    outlier_rate: float


@dataclass
class AdaptiveState:
    """Mutable selector state (exposed for inspection and tests)."""

    dictionaries: dict[str, bytes] = field(default_factory=dict)
    recent_outlier_rates: deque = field(default_factory=lambda: deque(maxlen=4))
    frames_planned: int = 0
    retrain_count: int = 0


def _sample(records: Sequence[str], size: int) -> list[str]:
    """Deterministic stride sample of up to ``size`` records."""
    if len(records) <= size:
        return list(records)
    stride = len(records) // size
    return [records[i] for i in range(0, stride * size, stride)]


def _pattern_tokens(literals: Sequence[str]) -> list:
    """Rebuild the token-sequence form of a pattern from its literal segments."""
    tokens: list = []
    for position, literal in enumerate(literals):
        if position:
            tokens.append(WILDCARD)
        tokens.extend(literal)
    return tokens


def estimate_pbc_ratio(dictionary: PatternDictionary, sample: Sequence[str]) -> tuple[float, float]:
    """Encoding-length estimate of PBC on ``sample``: ``(ratio, outlier_rate)``.

    Matched records are grouped per pattern and priced with
    :func:`repro.core.encoding_length.minimal_encoding_length` (Definition 2's
    optimal per-field encoder selection) plus the pattern-id varint; outliers
    cost their raw bytes plus the outlier marker.
    """
    compressor = PBCCompressor(dictionary=dictionary)
    matcher = compressor._matcher
    assert matcher is not None
    by_pattern: dict[int, list[str]] = {}
    estimated = 0
    original = 0
    outliers = 0
    for record in sample:
        original += len(record.encode("utf-8"))
        match = matcher.match(record)
        if match is None:
            outliers += 1
            estimated += 1 + len(record.encode("utf-8"))
            continue
        estimated += uvarint_size(match.pattern.pattern_id)
        by_pattern.setdefault(match.pattern.pattern_id, []).append(record)
    for pattern_id, records in by_pattern.items():
        tokens = _pattern_tokens(dictionary.get(pattern_id).literals)
        estimated += minimal_encoding_length(records, tokens)
    if original == 0:
        return 1.0, 0.0
    return estimated / original, outliers / len(sample)


class AdaptiveCodecSelector:
    """Stateful per-frame codec chooser used by :class:`repro.stream.StreamWriter`."""

    def __init__(self, config: AdaptiveConfig | None = None) -> None:
        self.config = config if config is not None else AdaptiveConfig()
        if not self.config.candidates:
            raise StreamError("adaptive selection needs at least one candidate codec")
        self._codecs: list[FrameCodec] = [
            frame_codec_by_name(name) for name in self.config.candidates
        ]
        # The shared windowed drift detector (repro.codecs.lifecycle); the
        # state dataclass aliases its deque so inspection code keeps working.
        self._drift = DriftWindow(
            window=self.config.drift_window, threshold=self.config.drift_threshold
        )
        self.state = AdaptiveState(recent_outlier_rates=self._drift.rates)

    # ------------------------------------------------------------- dictionaries

    def _ensure_trained(self, records: Sequence[str]) -> bool:
        """Train missing dictionaries on ``records``; True if anything trained."""
        trained = False
        corpus = list(records[: self.config.train_size])
        for codec in self._codecs:
            if codec.trains and codec.name not in self.state.dictionaries:
                self.state.dictionaries[codec.name] = codec.train(corpus)
                trained = True
        return trained

    # ------------------------------------------------------------------ select

    def plan_frame(self, records: Sequence[str]) -> FramePlan:
        """Score every candidate on a sample of ``records`` and pick the winner."""
        if not records:
            raise StreamError("cannot plan a frame for zero records")
        retrained = False
        if self._drift.drifted:
            self.state.dictionaries.clear()
            self._drift.reset()
            self.state.retrain_count += 1
            retrained = True
        self._ensure_trained(records)

        sample = _sample(records, self.config.sample_size)
        sample_original = sum(len(record.encode("utf-8")) for record in sample)
        pbc_estimate: tuple[float, float] | None = None
        pbc_dict_payload = self.state.dictionaries.get("pbc")
        if pbc_dict_payload:
            pbc_estimate = estimate_pbc_ratio(
                PatternDictionary.from_bytes(pbc_dict_payload), sample
            )

        scores: list[CodecScore] = []
        sample_fraction = len(sample) / len(records)
        for codec in self._codecs:
            dict_payload = self.state.dictionaries.get(codec.name, b"")
            body, _ = codec.encode(sample, dict_payload)
            # The trained dictionary is persisted once per frame, so charge the
            # sampled fraction of it to keep the ratio comparable to the body.
            stored = len(body) + int(len(dict_payload) * sample_fraction)
            measured = stored / sample_original if sample_original else 1.0
            estimated: float | None = None
            if pbc_estimate is not None and codec.name in ("pbc", "pbc_f"):
                estimated = pbc_estimate[0]
            weight = self.config.measured_weight
            score = measured if estimated is None else weight * measured + (1 - weight) * estimated
            scores.append(
                CodecScore(
                    name=codec.name,
                    codec_id=codec.codec_id,
                    sample_original=sample_original,
                    sample_stored=stored,
                    estimated_ratio=estimated,
                    score=score,
                )
            )

        winner = min(scores, key=lambda item: item.score)
        outlier_rate = pbc_estimate[1] if pbc_estimate is not None else 0.0
        self._drift.observe(outlier_rate)
        self.state.frames_planned += 1
        return FramePlan(
            codec_id=winner.codec_id,
            codec_name=winner.name,
            dict_payload=self.state.dictionaries.get(winner.name, b""),
            scores=tuple(scores),
            retrained=retrained,
            outlier_rate=outlier_rate,
        )

    # --------------------------------------------------------------- telemetry

    @property
    def retrain_count(self) -> int:
        """How many times drift forced a dictionary retrain."""
        return self.state.retrain_count

    @property
    def windowed_outlier_rate(self) -> float:
        """Mean outlier rate over the drift window (0.0 while warming up)."""
        return self._drift.mean
