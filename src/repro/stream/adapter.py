"""Interop adapter: stream frames as the block format of the storage layers.

:class:`StreamFrameCodec` implements the :class:`repro.compressors.base.Codec`
interface, so anything that takes a block codec — :class:`repro.blockstore.BlockStore`,
:class:`repro.lsm.sstable.BlockCompressionPolicy`, :class:`repro.tierbase` —
can transparently use stream frames as its on-disk block format.  Each
``compress`` call emits one *standalone frame*: the same self-describing
``codec_id + dictionary + body + CRC32`` layout as a container frame, minus
the container header/footer (the host store already has its own index).  The
benefits carry over: blocks written by different codecs coexist, every block
is integrity-checked on read, and the codec can be chosen adaptively per
block.

Two modes:

* ``records_mode=False`` (default) — the incoming payload is opaque bytes;
  candidates are restricted to the byte-oriented frame codecs (raw, gzip,
  lzma, zstd, fsst).  This is what SSTable block payloads need.
* ``records_mode=True`` — the incoming payload is a *record block*
  (``uvarint(count)`` + length-prefixed UTF-8 records), which is exactly what
  :class:`~repro.blockstore.BlockStore` builds.  The adapter unpacks it and
  lets the pattern-based codecs (PBC, PBC_F) compete too, with per-block
  trained dictionaries.  If the payload does not losslessly roundtrip through
  the record-block layout the adapter silently falls back to byte mode, so
  correctness never depends on the caller's framing.
"""

from __future__ import annotations

from typing import Sequence

from repro.compressors.base import Codec
from repro.exceptions import StreamError, StreamFormatError
from repro.stream.format import decode_frame, encode_frame, pack_records, unpack_records
from repro.stream.framecodecs import (
    FrameCodec,
    frame_codec_by_id,
    frame_codec_by_name,
)

#: Byte-oriented candidates tried in adaptive byte mode.
BYTE_CANDIDATES: tuple[str, ...] = ("gzip", "zstd", "fsst", "raw")

#: Record-oriented candidates added in adaptive records mode.
RECORD_CANDIDATES: tuple[str, ...] = ("pbc", "pbc_f") + BYTE_CANDIDATES


class StreamFrameCodec(Codec):
    """A :class:`Codec` whose payloads are standalone, self-describing stream frames."""

    def __init__(
        self,
        codec: str = "adaptive",
        records_mode: bool = False,
        candidates: Sequence[str] | None = None,
    ) -> None:
        self.records_mode = records_mode
        self._fixed: FrameCodec | None = None
        if codec == "adaptive":
            names = tuple(candidates) if candidates else (
                RECORD_CANDIDATES if records_mode else BYTE_CANDIDATES
            )
            self._candidates = [frame_codec_by_name(name) for name in names]
        else:
            self._fixed = frame_codec_by_name(codec)
            self._candidates = [self._fixed]
        self._byte_candidates = [c for c in self._candidates if _is_byte_oriented(c)]
        if not records_mode and len(self._byte_candidates) != len(self._candidates):
            # Fail fast: record-oriented codecs cannot compress opaque bytes.
            names = [c.name for c in self._candidates if not _is_byte_oriented(c)]
            raise StreamError(f"frame codecs {names} need records_mode=True")
        self.name = f"stream[{codec}]"

    # --------------------------------------------------------------- compress

    def compress(self, data: bytes) -> bytes:
        records: list[str] | None = None
        if self.records_mode:
            records = _try_unpack(data)
        # An empty block must take the byte path: pattern codecs cannot train
        # on zero records, and record_count 0 is the byte-mode marker.
        if records:
            return self._compress_records(records)
        return self._compress_bytes(data)

    def _compress_records(self, records: list[str]) -> bytes:
        best: bytes | None = None
        for codec in self._candidates:
            dict_payload = codec.train(records) if codec.trains else b""
            body, _ = codec.encode(records, dict_payload)
            frame = encode_frame(codec.codec_id, dict_payload, body, len(records))
            if best is None or len(frame) < len(best):
                best = frame
        assert best is not None
        return best

    def _compress_bytes(self, data: bytes) -> bytes:
        best: bytes | None = None
        for codec in self._byte_candidates:
            dict_payload = codec.train_bytes([data]) if codec.trains else b""
            body = codec.compress_bytes(data, dict_payload)
            # record_count 0 marks a byte-mode frame (a real record frame
            # always covers at least one record).
            frame = encode_frame(codec.codec_id, dict_payload, body, 0)
            if best is None or len(frame) < len(best):
                best = frame
        if best is None:
            # A record-only fixed codec received a payload it cannot frame
            # (e.g. an empty record block): store it raw rather than failing.
            raw = frame_codec_by_name("raw")
            return encode_frame(raw.codec_id, b"", raw.compress_bytes(data), 0)
        return best

    # ------------------------------------------------------------- decompress

    def decompress(self, data: bytes) -> bytes:
        frame = decode_frame(data)  # CRC-verified
        codec = frame_codec_by_id(frame.codec_id)
        if frame.record_count == 0:
            return codec.decompress_bytes(frame.body, frame.dict_payload)
        records = codec.decode(frame.body, frame.dict_payload)
        if len(records) != frame.record_count:
            raise StreamFormatError(
                f"frame decoded {len(records)} records, header says {frame.record_count}"
            )
        return pack_records(records)


def _is_byte_oriented(codec: FrameCodec) -> bool:
    """Whether the codec implements the opaque-bytes interface."""
    return not codec.record_oriented


def _try_unpack(data: bytes) -> list[str] | None:
    """Parse ``data`` as a record block iff it roundtrips losslessly."""
    try:
        records = unpack_records(data)
    except Exception:
        return None
    # Non-canonical varints or exotic framings could parse but re-serialise
    # differently; only accept payloads the decompressor will rebuild exactly.
    if pack_records(records) != data:
        return None
    return records
