"""Frame codecs: how a run of records becomes one compressed frame body.

Every frame in a stream container is compressed by exactly one *frame codec*,
identified by a one-byte codec id stored in the frame header.  A frame codec
owns three things:

* ``train(records) -> bytes`` — build the codec's trained dictionary payload
  (pattern dictionary for PBC, Zstd prefix dictionary, FSST symbol table; raw
  and stdlib codecs return ``b""``) that is persisted inside the frame,
* ``encode(records, dict_payload) -> (body, outliers)`` — compress the records
  into the frame body (``outliers`` is the number of records a pattern-based
  codec had to store raw; 0 for byte-oriented codecs),
* ``decode(body, dict_payload) -> list[str]`` — the exact inverse.

Byte-oriented codecs additionally expose ``compress_bytes``/``decompress_bytes``
over opaque payloads, which is what the :mod:`repro.stream.adapter` uses to
serve as a block codec for :class:`repro.blockstore.BlockStore` and the LSM
SSTables.  Pattern-based codecs are record-oriented and do not implement the
byte-level interface.

The module-level :func:`compress_frame` / :func:`decompress_frame` functions
are the worker entry points of the parallel pipeline: they are plain top-level
functions taking only picklable arguments, so they run unchanged in a thread
pool or a process pool.  Trained compressors are memoised per process keyed by
the dictionary payload digest, so a shared dictionary is deserialised once per
worker rather than once per frame.
"""

from __future__ import annotations

import gzip
import hashlib
import lzma
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.compressors.fsst import FSSTCodec, SymbolTable, train_symbol_table
from repro.compressors.zstdlike import ZstdLikeCodec, train_dictionary
from repro.core.compressor import PBCCompressor, PBCFCompressor
from repro.core.extraction import ExtractionConfig
from repro.core.pattern import OUTLIER_PATTERN_ID, PatternDictionary
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import StreamError, StreamFormatError
from repro.stream.format import pack_records, unpack_records

#: Default extraction budget used when a PBC frame codec trains a dictionary.
DEFAULT_EXTRACTION = ExtractionConfig(max_patterns=16, sample_size=256)


class FrameCodec(ABC):
    """One entry of the frame codec registry."""

    #: one-byte id stored in every frame header.
    codec_id: int = -1
    #: name used by the CLI, the adaptive selector and reports.
    name: str = "frame-codec"
    #: whether :meth:`train` produces a non-empty dictionary payload.
    trains: bool = False
    #: whether the codec is CPU-bound pure Python (prefers a process pool).
    cpu_bound: bool = False

    def train(self, records: Sequence[str]) -> bytes:
        """Train the codec's frame dictionary on sample records."""
        del records
        return b""

    def train_bytes(self, payloads: Sequence[bytes]) -> bytes:
        """Train the frame dictionary on opaque byte payloads (adapter path)."""
        del payloads
        return b""

    def encode(self, records: Sequence[str], dict_payload: bytes = b"") -> tuple[bytes, int]:
        """Compress records into a frame body; returns ``(body, outlier_count)``."""
        return self.compress_bytes(pack_records(records), dict_payload), 0

    def decode(self, body: bytes, dict_payload: bytes = b"") -> list[str]:
        """Invert :meth:`encode`."""
        return unpack_records(self.decompress_bytes(body, dict_payload))

    # ------------------------------------------------------------ byte level

    def compress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        """Compress an opaque byte payload (adapter path)."""
        raise StreamError(f"frame codec {self.name!r} is record-oriented")

    def decompress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        """Invert :meth:`compress_bytes`."""
        raise StreamError(f"frame codec {self.name!r} is record-oriented")


# ------------------------------------------------------- byte-oriented codecs


class RawFrameCodec(FrameCodec):
    """No compression; the baseline every candidate must beat."""

    codec_id = 0
    name = "raw"

    def compress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return bytes(data)

    def decompress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return bytes(data)


class GzipFrameCodec(FrameCodec):
    """stdlib gzip over the record block (fast, GIL-released C path)."""

    codec_id = 1
    name = "gzip"

    def __init__(self, level: int = 6) -> None:
        self.level = level

    def compress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return gzip.compress(data, compresslevel=self.level)

    def decompress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return gzip.decompress(data)


class LZMAFrameCodec(FrameCodec):
    """stdlib LZMA over the record block (slow, highest stdlib ratio)."""

    codec_id = 2
    name = "lzma"

    def __init__(self, preset: int = 6) -> None:
        self.preset = preset

    def compress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return lzma.decompress(data)


class ZstdFrameCodec(FrameCodec):
    """Zstd-like codec with a per-stream trained prefix dictionary."""

    codec_id = 3
    name = "zstd"
    trains = True
    cpu_bound = True

    def __init__(self, level: int = 3, dictionary_size: int = 4096) -> None:
        self.level = level
        self.dictionary_size = dictionary_size

    def train(self, records: Sequence[str]) -> bytes:
        return self.train_bytes([record.encode("utf-8") for record in records])

    def train_bytes(self, payloads: Sequence[bytes]) -> bytes:
        return train_dictionary(payloads, max_size=self.dictionary_size)

    def _codec(self, dict_payload: bytes) -> ZstdLikeCodec:
        return ZstdLikeCodec(level=self.level, dictionary=dict_payload)

    def compress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return self._codec(dict_payload).compress(data)

    def decompress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return self._codec(dict_payload).decompress(data)


class FSSTFrameCodec(FrameCodec):
    """FSST symbol table trained per stream, applied to the whole record block."""

    codec_id = 4
    name = "fsst"
    trains = True
    cpu_bound = True

    def train(self, records: Sequence[str]) -> bytes:
        return self.train_bytes([record.encode("utf-8") for record in records])

    def train_bytes(self, payloads: Sequence[bytes]) -> bytes:
        return train_symbol_table(payloads).to_bytes()

    @staticmethod
    def _table(dict_payload: bytes) -> SymbolTable:
        if not dict_payload:
            return SymbolTable()
        table, _ = SymbolTable.from_bytes(dict_payload, 0)
        return table

    def compress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return self._table(dict_payload).encode(data)

    def decompress_bytes(self, data: bytes, dict_payload: bytes = b"") -> bytes:
        return self._table(dict_payload).decode(data)


# ---------------------------------------------------- pattern-oriented codecs


class PBCFrameCodec(FrameCodec):
    """Per-record PBC inside a frame; the dictionary payload is the pattern dict.

    The frame body is ``uvarint(count)`` followed by length-prefixed per-record
    PBC payloads, so a decoded frame still knows its record boundaries.
    """

    codec_id = 5
    name = "pbc"
    trains = True
    cpu_bound = True

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        self.config = config if config is not None else DEFAULT_EXTRACTION

    def train(self, records: Sequence[str]) -> bytes:
        compressor = PBCCompressor(config=self.config)
        report = compressor.train(list(records))
        return report.dictionary.to_bytes()

    def _compressor(self, dict_payload: bytes) -> PBCCompressor:
        if not dict_payload:
            raise StreamFormatError("PBC frame is missing its pattern dictionary")
        return PBCCompressor(dictionary=PatternDictionary.from_bytes(dict_payload))

    def encode(self, records: Sequence[str], dict_payload: bytes = b"") -> tuple[bytes, int]:
        compressor = _cached_compressor(self.codec_id, dict_payload, self._compressor)
        stats = compressor.enable_stats(timed=False)
        try:
            payloads = [compressor.compress(record) for record in records]
        finally:
            compressor.disable_stats()
        body = bytearray()
        body += encode_uvarint(len(payloads))
        for payload in payloads:
            body += encode_uvarint(len(payload))
            body += payload
        return bytes(body), stats.outliers

    def decode(self, body: bytes, dict_payload: bytes = b"") -> list[str]:
        compressor = _cached_compressor(self.codec_id, dict_payload, self._compressor)
        count, offset = decode_uvarint(body, 0)
        records: list[str] = []
        for _ in range(count):
            length, offset = decode_uvarint(body, offset)
            end = offset + length
            if end > len(body):
                raise StreamFormatError("truncated PBC frame body")
            records.append(compressor.decompress(body[offset:end]))
            offset = end
        if offset != len(body):
            raise StreamFormatError("trailing bytes after PBC frame body")
        return records


class PBCFFrameCodec(PBCFrameCodec):
    """PBC_F frames: PBC plus a trained FSST pass over every record payload.

    The dictionary payload concatenates the pattern dictionary and the FSST
    symbol table: ``uvarint(len(pbc_dict)) + pbc_dict + fsst_table``.
    """

    codec_id = 6
    name = "pbc_f"

    def train(self, records: Sequence[str]) -> bytes:
        compressor = PBCFCompressor(config=self.config)
        report = compressor.train(list(records))
        pbc_payload = report.dictionary.to_bytes()
        residual = compressor._residual_codec
        table_payload = residual.table.to_bytes() if isinstance(residual, FSSTCodec) else b""
        return bytes(encode_uvarint(len(pbc_payload))) + pbc_payload + table_payload

    def _compressor(self, dict_payload: bytes) -> PBCCompressor:
        if not dict_payload:
            raise StreamFormatError("PBC_F frame is missing its dictionary payload")
        pbc_length, offset = decode_uvarint(dict_payload, 0)
        end = offset + pbc_length
        if end > len(dict_payload):
            raise StreamFormatError("truncated PBC_F dictionary payload")
        dictionary = PatternDictionary.from_bytes(dict_payload[offset:end])
        table_payload = dict_payload[end:]
        table, _ = SymbolTable.from_bytes(table_payload, 0) if table_payload else (SymbolTable(), 0)
        return PBCFCompressor(dictionary=dictionary, residual_codec=FSSTCodec(table=table))


# ------------------------------------------------------------------- registry

FRAME_CODECS: tuple[FrameCodec, ...] = (
    RawFrameCodec(),
    GzipFrameCodec(),
    LZMAFrameCodec(),
    ZstdFrameCodec(),
    FSSTFrameCodec(),
    PBCFrameCodec(),
    PBCFFrameCodec(),
)

FRAME_CODECS_BY_ID: dict[int, FrameCodec] = {codec.codec_id: codec for codec in FRAME_CODECS}
FRAME_CODECS_BY_NAME: dict[str, FrameCodec] = {codec.name: codec for codec in FRAME_CODECS}


def frame_codec_by_id(codec_id: int) -> FrameCodec:
    """Look up a frame codec by its one-byte id."""
    try:
        return FRAME_CODECS_BY_ID[codec_id]
    except KeyError as error:
        raise StreamFormatError(f"unknown frame codec id {codec_id}") from error


def frame_codec_by_name(name: str) -> FrameCodec:
    """Look up a frame codec by name (case-insensitive)."""
    try:
        return FRAME_CODECS_BY_NAME[name.lower()]
    except KeyError as error:
        raise StreamError(
            f"unknown frame codec {name!r}; available: {sorted(FRAME_CODECS_BY_NAME)}"
        ) from error


def frame_codec_names() -> list[str]:
    """Names of all registered frame codecs."""
    return sorted(FRAME_CODECS_BY_NAME)


# ------------------------------------------------- worker-process entry points


#: Cache of deserialised compressors keyed by (thread id, codec id, dict digest).
#: The thread id keeps each pool worker on its own instance: PBCCompressor
#: carries mutable monitoring/stats state, so sharing one across threads would
#: race (process-pool workers are isolated by construction).
_COMPRESSOR_CACHE: dict[tuple[int, int, bytes], PBCCompressor] = {}
_COMPRESSOR_CACHE_LIMIT = 32


def _cached_compressor(codec_id: int, dict_payload: bytes, build) -> PBCCompressor:
    key = (threading.get_ident(), codec_id, hashlib.sha1(dict_payload).digest())
    compressor = _COMPRESSOR_CACHE.get(key)
    if compressor is None:
        compressor = build(dict_payload)
        if len(_COMPRESSOR_CACHE) >= _COMPRESSOR_CACHE_LIMIT:
            _COMPRESSOR_CACHE.pop(next(iter(_COMPRESSOR_CACHE)))
        _COMPRESSOR_CACHE[key] = compressor
    return compressor


@dataclass(frozen=True)
class CompressedFrame:
    """Result of compressing one frame (what a pipeline worker returns)."""

    codec_id: int
    dict_payload: bytes
    body: bytes
    record_count: int
    original_bytes: int
    outliers: int
    #: seconds the worker spent encoding (frame granularity, two clock calls).
    compress_seconds: float = 0.0

    @property
    def stored_bytes(self) -> int:
        """Dictionary plus body bytes (the frame's compressed payload size)."""
        return len(self.dict_payload) + len(self.body)

    @property
    def outlier_rate(self) -> float:
        """Fraction of records the frame codec stored raw."""
        if self.record_count == 0:
            return 0.0
        return self.outliers / self.record_count


def compress_frame(codec_id: int, records: Sequence[str], dict_payload: bytes = b"") -> CompressedFrame:
    """Compress one frame; top-level and picklable, runs in pool workers.

    When ``dict_payload`` is empty and the codec trains, the dictionary is
    trained on the frame's own records inside the worker (self-contained
    frames); otherwise the provided shared dictionary is reused.
    """
    codec = frame_codec_by_id(codec_id)
    started = time.perf_counter()
    if codec.trains and not dict_payload:
        dict_payload = codec.train(records)
    body, outliers = codec.encode(records, dict_payload)
    elapsed = time.perf_counter() - started
    return CompressedFrame(
        codec_id=codec_id,
        dict_payload=dict_payload,
        body=body,
        record_count=len(records),
        original_bytes=sum(len(record.encode("utf-8")) for record in records),
        outliers=outliers,
        compress_seconds=elapsed,
    )


def decompress_frame(codec_id: int, dict_payload: bytes, body: bytes) -> list[str]:
    """Decode one frame body back into records (pool-worker safe)."""
    return frame_codec_by_id(codec_id).decode(body, dict_payload)
