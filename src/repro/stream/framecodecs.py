"""Frame codecs: the stream pipeline's view of the :mod:`repro.codecs` registry.

Every frame in a stream container is compressed by exactly one codec,
identified by the one-byte registry id stored in the frame header.  The codec
classes and the id/name tables that used to live here moved to
:mod:`repro.codecs` (the process-wide single source of truth shared with
TierBase, the LSM SSTables, the block stores and the service); this module
keeps the frame-specific pieces:

* the ``frame_codec_*`` lookups, thin aliases over the registry kept for the
  stream pipeline's vocabulary (an unknown id still raises
  ``StreamFormatError`` via :class:`~repro.exceptions.UnknownCodecError`),
* :class:`CompressedFrame` and the :func:`compress_frame` /
  :func:`decompress_frame` worker entry points of the parallel pipeline: plain
  top-level functions taking only picklable arguments, so they run unchanged
  in a thread pool or a process pool.

Stream frames stay *self-contained*: the trained model payload travels inside
the frame, so frames need no :class:`~repro.codecs.ModelStore` and any frame
decodes in isolation — including in parallel workers.  (The versioned-epoch
machinery is for stores whose payloads outlive the writer; see
docs/FORMATS.md §6.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.codecs import Codec, codec_by_id, codec_by_name, codec_names

#: Back-compat alias: stream code and tests spell the interface ``FrameCodec``.
FrameCodec = Codec


def frame_codec_by_id(codec_id: int) -> FrameCodec:
    """Look up a frame codec by its one-byte registry id."""
    return codec_by_id(codec_id)


def frame_codec_by_name(name: str) -> FrameCodec:
    """Look up a frame codec by name (case-insensitive)."""
    return codec_by_name(name)


def frame_codec_names() -> list[str]:
    """Names of all registered codecs (sorted)."""
    return codec_names()


# ------------------------------------------------- worker-process entry points


@dataclass(frozen=True)
class CompressedFrame:
    """Result of compressing one frame (what a pipeline worker returns)."""

    codec_id: int
    dict_payload: bytes
    body: bytes
    record_count: int
    original_bytes: int
    outliers: int
    #: seconds the worker spent encoding (frame granularity, two clock calls).
    compress_seconds: float = 0.0

    @property
    def stored_bytes(self) -> int:
        """Dictionary plus body bytes (the frame's compressed payload size)."""
        return len(self.dict_payload) + len(self.body)

    @property
    def outlier_rate(self) -> float:
        """Fraction of records the frame codec stored raw."""
        if self.record_count == 0:
            return 0.0
        return self.outliers / self.record_count


def compress_frame(codec_id: int, records: Sequence[str], dict_payload: bytes = b"") -> CompressedFrame:
    """Compress one frame; top-level and picklable, runs in pool workers.

    When ``dict_payload`` is empty and the codec trains, the model is trained
    on the frame's own records inside the worker (self-contained frames);
    otherwise the provided shared model payload is reused.
    """
    codec = codec_by_id(codec_id)
    started = time.perf_counter()
    if codec.trains and not dict_payload:
        dict_payload = codec.train(records)
    body, outliers = codec.encode(records, dict_payload)
    elapsed = time.perf_counter() - started
    return CompressedFrame(
        codec_id=codec_id,
        dict_payload=dict_payload,
        body=body,
        record_count=len(records),
        original_bytes=sum(len(record.encode("utf-8")) for record in records),
        outliers=outliers,
        compress_seconds=elapsed,
    )


def decompress_frame(codec_id: int, dict_payload: bytes, body: bytes) -> list[str]:
    """Decode one frame body back into records (pool-worker safe)."""
    return codec_by_id(codec_id).decode(body, dict_payload)
