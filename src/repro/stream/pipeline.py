"""Parallel stream compression pipeline: :class:`StreamWriter` / :class:`StreamReader`.

The writer batches incoming records into frames of ``frame_records`` records,
plans a codec for each frame (fixed, or per-frame via the
:class:`~repro.stream.adaptive.AdaptiveCodecSelector`) and fans frame
compression out over a ``concurrent.futures`` pool:

* ``executor="process"`` — CPU-bound pure-Python codecs (PBC, PBC_F, Zstd-like,
  FSST) scale across cores; workers receive only picklable arguments
  (codec id, records, dictionary bytes) and return a
  :class:`~repro.stream.framecodecs.CompressedFrame`,
* ``executor="thread"`` — the stdlib codecs (gzip, lzma) release the GIL in C,
  so threads overlap them without process overhead,
* ``executor="serial"`` — no pool; useful for debugging and tiny inputs,
* ``executor="auto"`` — process pool when the planned codec family is
  CPU-bound pure Python, thread pool otherwise.

Frame ordering is preserved by construction: futures are kept in a FIFO deque
and frames are appended to the container strictly in submission order, while
the pool is free to *finish* them out of order.  Back-pressure caps the number
of in-flight frames at ``max_pending`` so a slow sink never buffers the whole
input.

The reader is the random-access counterpart: opening it reads only the footer
index; ``get(i)`` binary-searches the index, reads one frame, verifies its CRC
and decodes it (an LRU of decoded frames makes clustered lookups cheap —
``frames_decompressed`` counts actual decompressions so callers can verify the
single-frame guarantee).
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Sequence

from repro.core.compressor import CompressionStats
from repro.exceptions import StreamError
from repro.stream.adaptive import AdaptiveCodecSelector, AdaptiveConfig
from repro.stream.format import FrameInfo, StreamContainerReader, StreamContainerWriter
from repro.stream.framecodecs import (
    CompressedFrame,
    compress_frame,
    decompress_frame,
    frame_codec_by_id,
    frame_codec_by_name,
)

_EXECUTORS = ("auto", "thread", "process", "serial")


@dataclass
class StreamConfig:
    """Configuration of a :class:`StreamWriter`."""

    #: frame codec name, or ``"adaptive"`` for per-frame selection.
    codec: str = "adaptive"
    #: records per frame (the unit of compression, random access and parallelism).
    frame_records: int = 2048
    #: pool size; 0 means compress frames inline on the caller's thread.
    workers: int = 0
    #: ``"auto"`` | ``"thread"`` | ``"process"`` | ``"serial"``.
    executor: str = "auto"
    #: maximum in-flight frames before the writer blocks (default ``2 * workers``).
    max_pending: int | None = None
    #: collect a :class:`CompressionStats` over the stream.
    collect_stats: bool = True
    #: also accumulate wall-clock timings in the stats (off keeps hot paths
    #: free of clock calls; frame workers always count records/bytes only).
    timed_stats: bool = False
    #: shared dictionary mode: train once on the first frame and reuse (the
    #: adaptive selector always does this; fixed codecs opt out with False to
    #: train per frame inside the workers).
    shared_dictionary: bool = True
    #: adaptive-selection tuning (used when ``codec == "adaptive"``).
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)

    def __post_init__(self) -> None:
        if self.frame_records < 1:
            raise StreamError("frame_records must be at least 1")
        if self.workers < 0:
            raise StreamError("workers must be non-negative")
        if self.executor not in _EXECUTORS:
            raise StreamError(f"executor must be one of {_EXECUTORS}")


@dataclass
class StreamSummary:
    """What :meth:`StreamWriter.close` returns."""

    frames: list[FrameInfo]
    stats: CompressionStats | None
    codec_usage: dict[str, int]
    retrain_count: int

    @property
    def record_count(self) -> int:
        """Total records written."""
        return sum(frame.record_count for frame in self.frames)


class StreamWriter:
    """Batch records into frames and compress them through a worker pool."""

    def __init__(self, sink: str | Path | BinaryIO, config: StreamConfig | None = None) -> None:
        self.config = config if config is not None else StreamConfig()
        # Resolve the codec before touching the sink so a bad name cannot leak
        # a half-open file.
        self._selector: AdaptiveCodecSelector | None = None
        self._fixed_codec_id: int | None = None
        if self.config.codec == "adaptive":
            self._selector = AdaptiveCodecSelector(self.config.adaptive)
        else:
            self._fixed_codec_id = frame_codec_by_name(self.config.codec).codec_id
        if isinstance(sink, (str, Path)):
            self._file: BinaryIO = open(sink, "wb")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._container = StreamContainerWriter(self._file)
        self._buffer: list[str] = []
        self._pending: deque[Future] = deque()
        self._executor: Executor | None = None
        self._shared_dict: bytes | None = None
        self._codec_usage: dict[str, int] = {}
        self._closed = False
        self.stats: CompressionStats | None = (
            CompressionStats() if self.config.collect_stats else None
        )

    # ------------------------------------------------------------------ write

    def write(self, record: str) -> None:
        """Buffer one record; flushes a frame when the batch is full."""
        if self._closed:
            raise StreamError("cannot write to a closed StreamWriter")
        self._buffer.append(record)
        if len(self._buffer) >= self.config.frame_records:
            self._flush_frame()

    def write_many(self, records: Iterable[str]) -> None:
        """Buffer an iterable of records."""
        for record in records:
            self.write(record)

    # --------------------------------------------------------------- internals

    def _plan(self, records: Sequence[str]) -> tuple[int, bytes]:
        """Pick (codec id, dictionary payload) for the next frame."""
        if self._selector is not None:
            plan = self._selector.plan_frame(records)
            return plan.codec_id, plan.dict_payload
        assert self._fixed_codec_id is not None
        codec = frame_codec_by_id(self._fixed_codec_id)
        if codec.trains and self.config.shared_dictionary:
            if self._shared_dict is None:
                self._shared_dict = codec.train(records)
            return self._fixed_codec_id, self._shared_dict
        # Empty payload: the worker trains on the frame's own records.
        return self._fixed_codec_id, b""

    def _ensure_executor(self, codec_id: int) -> Executor | None:
        if self.config.workers == 0 or self.config.executor == "serial":
            return None
        if self._executor is None:
            kind = self.config.executor
            if kind == "auto":
                cpu_bound = frame_codec_by_id(codec_id).cpu_bound
                kind = "process" if cpu_bound and (os.cpu_count() or 1) > 1 else "thread"
            if kind == "process":
                self._executor = ProcessPoolExecutor(max_workers=self.config.workers)
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.config.workers)
        return self._executor

    def _flush_frame(self) -> None:
        records, self._buffer = self._buffer, []
        codec_id, dict_payload = self._plan(records)
        executor = self._ensure_executor(codec_id)
        if executor is None:
            self._commit(compress_frame(codec_id, records, dict_payload))
            return
        self._pending.append(executor.submit(compress_frame, codec_id, records, dict_payload))
        max_pending = self.config.max_pending or 2 * self.config.workers
        # Opportunistically retire finished frames, then apply back-pressure.
        while self._pending and self._pending[0].done():
            self._commit(self._pending.popleft().result())
        while len(self._pending) > max_pending:
            self._commit(self._pending.popleft().result())

    def _commit(self, frame: CompressedFrame) -> None:
        """Append a compressed frame to the container (submission order)."""
        self._container.append_frame(
            frame.codec_id, frame.dict_payload, frame.body, frame.record_count
        )
        name = frame_codec_by_id(frame.codec_id).name
        self._codec_usage[name] = self._codec_usage.get(name, 0) + 1
        if self.stats is not None:
            self.stats.records += frame.record_count
            self.stats.original_bytes += frame.original_bytes
            self.stats.compressed_bytes += frame.stored_bytes
            self.stats.outliers += frame.outliers
            if self.config.timed_stats:
                # Sum of per-frame worker time: actual encoding seconds (CPU
                # time across workers), not writer-session wall clock.
                self.stats.compress_seconds += frame.compress_seconds

    # ------------------------------------------------------------------ close

    def close(self) -> StreamSummary:
        """Flush the tail frame, drain the pool, finish the container."""
        if self._closed:
            raise StreamError("StreamWriter already closed")
        self._closed = True
        try:
            if self._buffer:
                records, self._buffer = self._buffer, []
                codec_id, dict_payload = self._plan(records)
                executor = self._ensure_executor(codec_id)
                if executor is None:
                    self._commit(compress_frame(codec_id, records, dict_payload))
                else:
                    self._pending.append(
                        executor.submit(compress_frame, codec_id, records, dict_payload)
                    )
            while self._pending:
                self._commit(self._pending.popleft().result())
            frames = self._container.finish()
        finally:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            if self._owns_file:
                self._file.close()
        return StreamSummary(
            frames=frames,
            stats=self.stats,
            codec_usage=dict(self._codec_usage),
            retrain_count=self._selector.retrain_count if self._selector else 0,
        )

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            if exc_type is None:
                self.close()
            else:
                # Abandon the container on error: drain the pool but do not
                # finish the footer, leaving an (intentionally) unreadable file.
                self._closed = True
                if self._executor is not None:
                    self._executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = None
                if self._owns_file:
                    self._file.close()


class StreamReader:
    """Random-access reader over a stream container file."""

    def __init__(self, source: str | Path | BinaryIO, frame_cache: int = 2) -> None:
        self._container = StreamContainerReader(source)
        self._cache: OrderedDict[int, list[str]] = OrderedDict()
        self._cache_limit = max(1, frame_cache)
        #: number of frames actually decompressed (cache misses); tests use
        #: this to assert the one-frame-per-lookup guarantee.
        self.frames_decompressed = 0

    # ------------------------------------------------------------------ intro

    @property
    def frames(self) -> list[FrameInfo]:
        """Footer index entries."""
        return self._container.frames

    @property
    def frame_count(self) -> int:
        """Number of frames."""
        return self._container.frame_count

    def __len__(self) -> int:
        return self._container.record_count

    def frame_for_record(self, index: int) -> int:
        """Frame position containing record ``index`` (no decompression)."""
        return self._container.frame_for_record(index)

    # ------------------------------------------------------------------- read

    def _decode_frame(self, position: int) -> list[str]:
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            return cached
        raw = self._container.read_frame(position)
        records = decompress_frame(raw.codec_id, raw.dict_payload, raw.body)
        if len(records) != raw.record_count:
            raise StreamError(
                f"frame {position} decoded {len(records)} records, header says {raw.record_count}"
            )
        self.frames_decompressed += 1
        self._cache[position] = records
        while len(self._cache) > self._cache_limit:
            self._cache.popitem(last=False)
        return records

    def get(self, index: int) -> str:
        """Random access: decompress (at most) the one containing frame."""
        position = self._container.frame_for_record(index)
        records = self._decode_frame(position)
        return records[index - self._container.frames[position].first_record]

    def __iter__(self) -> Iterator[str]:
        """Sequential scan, one frame at a time."""
        for position in range(self._container.frame_count):
            yield from self._decode_frame(position)

    def read_all(self, workers: int = 0) -> list[str]:
        """Decode every frame; with ``workers`` > 0, frames decode in parallel."""
        if workers <= 0 or self._container.frame_count <= 1:
            return list(self)
        raws = [self._container.read_frame(i) for i in range(self._container.frame_count)]
        # Mirror the writer's "auto" choice: processes only pay off for the
        # CPU-bound pure-Python codecs; gzip/lzma release the GIL in C, where
        # threads avoid pickling every frame across process boundaries.
        cpu_bound = any(frame_codec_by_id(raw.codec_id).cpu_bound for raw in raws)
        pool_class = ProcessPoolExecutor if cpu_bound and (os.cpu_count() or 1) > 1 else ThreadPoolExecutor
        with pool_class(max_workers=workers) as pool:
            decoded = list(
                pool.map(
                    decompress_frame,
                    [raw.codec_id for raw in raws],
                    [raw.dict_payload for raw in raws],
                    [raw.body for raw in raws],
                )
            )
        self.frames_decompressed += len(raws)
        return [record for frame in decoded for record in frame]

    # ---------------------------------------------------------------- cleanup

    def close(self) -> None:
        """Close the underlying container file."""
        self._container.close()

    def __enter__(self) -> "StreamReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------------------- helpers


def compress_stream(
    records: Iterable[str],
    sink: str | Path | BinaryIO,
    config: StreamConfig | None = None,
) -> StreamSummary:
    """One-shot: write every record to a new stream container."""
    with StreamWriter(sink, config) as writer:
        writer.write_many(records)
        return writer.close()


def decompress_stream(source: str | Path | BinaryIO, workers: int = 0) -> list[str]:
    """One-shot: read every record back from a stream container."""
    with StreamReader(source) as reader:
        return reader.read_all(workers=workers)
