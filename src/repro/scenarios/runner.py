"""Drive the scenario mixes through the open-loop wire load generator.

:func:`run_scenario` preloads a record space over the wire, then plugs a
mix-specific operation callback into
:func:`repro.net.loadgen.run_open_loop_workload` — so every scenario
inherits the open-loop discipline (global arrival timetable, per-index
deterministic RNG, latency measured from the *scheduled* release).  The
callback does double duty as a correctness oracle: every read checks the
value against the dataset's value universe, every scan checks ordering and
completeness against the acknowledged record count, and the per-mix row
reports ``lost`` / ``corrupt`` / ``unordered`` tallies that the scenario
suite (and CI) assert are zero.

Keys are zero-padded decimal indexes (``y00000042``) so lexicographic
order equals insert order — which is what lets a scan's completeness be
checked against a simple contiguous counter.  Inserts reserve an index
first, write, then acknowledge; the *visible* count only advances over a
contiguous prefix of acknowledged inserts (YCSB's acknowledged-counter
scheme), so readers and scanners never expect a key whose write has not
finished.
"""

from __future__ import annotations

import itertools
import tempfile
import threading
from dataclasses import dataclass
from typing import Sequence

from repro.datasets import load_dataset
from repro.net.client import KVClient
from repro.net.loadgen import OpenLoopResult, run_open_loop_workload
from repro.net.server import ServerConfig, ThreadedKVServer
from repro.scenarios.keydist import make_chooser
from repro.scenarios.mixes import ScenarioSpec, get_scenario, scenario_names
from repro.service.service import KVService, ServiceConfig
from repro.service.stats import percentile

__all__ = ["ScenarioResult", "run_scenario", "run_suite", "KEY_PREFIX", "key_for"]

#: Shared key namespace; zero-padded so lexicographic order == insert order.
KEY_PREFIX = "y"
_KEY_DIGITS = 8


def key_for(index: int) -> str:
    """The wire key for record ``index`` (sorts in insert order)."""
    return f"{KEY_PREFIX}{index:0{_KEY_DIGITS}d}"


class _Accounting:
    """Thread-safe record counter plus correctness tallies.

    ``visible`` is the acknowledged-contiguous record count: an insert
    reserves the next index, writes the record, then acknowledges it —
    and ``visible`` only advances across a gap-free prefix, so every
    index below ``visible`` is guaranteed written.
    """

    def __init__(self, initial_records: int) -> None:
        self._lock = threading.Lock()
        self.visible = initial_records
        self._next = initial_records
        self._pending: set[int] = set()
        self.lost = 0
        self.corrupt = 0
        self.unordered = 0
        self.scans = 0
        self.scan_items = 0
        self.max_scan_items = 0

    def reserve_insert(self) -> int:
        with self._lock:
            index = self._next
            self._next += 1
            return index

    def acknowledge_insert(self, index: int) -> None:
        with self._lock:
            self._pending.add(index)
            while self.visible in self._pending:
                self._pending.remove(self.visible)
                self.visible += 1

    def snapshot_visible(self) -> int:
        with self._lock:
            return self.visible

    def flag_lost(self, count: int = 1) -> None:
        with self._lock:
            self.lost += count

    def flag_corrupt(self, count: int = 1) -> None:
        with self._lock:
            self.corrupt += count

    def flag_unordered(self) -> None:
        with self._lock:
            self.unordered += 1

    def record_scan(self, items: int) -> None:
        with self._lock:
            self.scans += 1
            self.scan_items += items
            self.max_scan_items = max(self.max_scan_items, items)


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: load-generator stats + oracle tallies."""

    scenario: str
    backend: str
    open_loop: OpenLoopResult
    #: acknowledged record count when the run finished.
    records: int
    #: reads/scans that missed a record the oracle says must exist.
    lost: int
    #: values outside the dataset's value universe (torn/stale decodes).
    corrupt: int
    #: scans whose keys came back out of order.
    unordered: int
    scans: int = 0
    scan_items: int = 0
    max_scan_items: int = 0

    @property
    def clean(self) -> bool:
        """True when the correctness oracle saw zero anomalies."""
        return self.lost == 0 and self.corrupt == 0 and self.unordered == 0

    def _overall_latency_ms(self, fraction: float) -> float:
        merged = sorted(
            itertools.chain.from_iterable(self.open_loop.latencies.values())
        )
        return percentile(merged, fraction) * 1e3

    def row(self) -> dict:
        """One machine-readable per-mix row (JSON-serialisable)."""
        result = self.open_loop
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "operations": result.completed,
            "errors": result.errors,
            "offered_rate": round(result.offered_rate, 1),
            "achieved_rate": round(result.achieved_rate, 1),
            "p50_ms": round(self._overall_latency_ms(0.50), 3),
            "p95_ms": round(self._overall_latency_ms(0.95), 3),
            "p99_ms": round(self._overall_latency_ms(0.99), 3),
            "ops": dict(sorted(result.opcode_counts.items())),
            "error_kinds": dict(sorted(result.error_kinds.items())),
            "scan_count": self.scans,
            "scan_items": self.scan_items,
            "avg_scan_len": round(self.scan_items / self.scans, 2) if self.scans else 0.0,
            "max_scan_len": self.max_scan_items,
            "records": self.records,
            "lost": self.lost,
            "corrupt": self.corrupt,
            "unordered": self.unordered,
        }


def _preload_records(
    host: str, port: int, values: Sequence[str], records: int, timeout: float
) -> None:
    with KVClient(host, port, timeout=timeout) as client:
        batch = 64
        for start in range(0, records, batch):
            client.mset(
                [
                    (key_for(index), values[index % len(values)])
                    for index in range(start, min(start + batch, records))
                ]
            )


def _build_operation(spec: ScenarioSpec, values: Sequence[str], accounting: _Accounting):
    """The per-operation callback handed to the open-loop load generator."""
    chooser = make_chooser(spec.distribution)
    universe = frozenset(values)
    # Cumulative fraction ladder: read | update | insert | scan | rmw.
    c_read = spec.read
    c_update = c_read + spec.update
    c_insert = c_update + spec.insert
    c_scan = c_insert + spec.scan

    def _check_value(value: str) -> None:
        if value not in universe:
            accounting.flag_corrupt()

    def operation(client: KVClient, rng, index: int) -> str:
        draw = rng.random()
        visible = accounting.snapshot_visible()
        if draw < c_read:
            key = key_for(chooser.choose(rng, visible))
            value = client.get(key)
            if value is None:
                accounting.flag_lost()
            else:
                _check_value(value)
            return "READ"
        if draw < c_update:
            key = key_for(chooser.choose(rng, visible))
            client.set(key, values[rng.randrange(len(values))])
            return "UPDATE"
        if draw < c_insert:
            reserved = accounting.reserve_insert()
            client.set(key_for(reserved), values[reserved % len(values)])
            accounting.acknowledge_insert(reserved)
            return "INSERT"
        if draw < c_scan:
            length = rng.randint(1, spec.max_scan_length)
            start = chooser.choose(rng, visible)
            results = list(
                client.scan(key_for(start), key_for(start + length), limit=length)
            )
            previous = None
            for key, value in results:
                if previous is not None and key <= previous:
                    accounting.flag_unordered()
                previous = key
                _check_value(value)
            # Inserts never delete, so the range [start, start+length)
            # holds at least min(length, visible-at-pick - start) records.
            expected = min(length, max(visible - start, 0))
            if len(results) < expected:
                accounting.flag_lost(expected - len(results))
            if len(results) > length:
                accounting.flag_corrupt(len(results) - length)
            accounting.record_scan(len(results))
            return "SCAN"
        key = key_for(chooser.choose(rng, visible))
        value = client.get(key)
        if value is None:
            accounting.flag_lost()
        else:
            _check_value(value)
        client.set(key, values[rng.randrange(len(values))])
        return "RMW"

    return operation


def run_scenario(
    scenario: str | ScenarioSpec,
    host: str,
    port: int,
    *,
    backend: str = "",
    operations: int = 512,
    rate: float = 2000.0,
    workers: int = 4,
    records: int = 256,
    value_count: int = 256,
    seed: int = 2023,
    timeout: float = 30.0,
) -> ScenarioResult:
    """Run one scenario mix against a live server and return its row."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if records < 1:
        raise ValueError("records must be at least 1")
    values = load_dataset(spec.dataset, count=value_count, seed=seed)
    _preload_records(host, port, values, records, timeout)
    accounting = _Accounting(records)
    operation = _build_operation(spec, values, accounting)
    open_loop = run_open_loop_workload(
        host,
        port,
        values,
        rate=rate,
        operations=operations,
        workers=workers,
        seed=seed,
        preload=False,
        timeout=timeout,
        operation=operation,
    )
    return ScenarioResult(
        scenario=spec.name,
        backend=backend,
        open_loop=open_loop,
        records=accounting.snapshot_visible(),
        lost=accounting.lost,
        corrupt=accounting.corrupt,
        unordered=accounting.unordered,
        scans=accounting.scans,
        scan_items=accounting.scan_items,
        max_scan_items=accounting.max_scan_items,
    )


def run_suite(
    scenarios: Sequence[str] | None = None,
    backends: Sequence[str] = ("tierbase", "lsm"),
    *,
    operations: int = 512,
    rate: float = 2000.0,
    workers: int = 4,
    records: int = 256,
    value_count: int = 256,
    seed: int = 2023,
    shard_count: int = 2,
    compressor: str = "pbc_f",
    timeout: float = 30.0,
) -> list[ScenarioResult]:
    """Run the mix matrix against in-process servers, one per backend.

    Each backend gets a fresh :class:`KVService` behind a
    :class:`ThreadedKVServer`; each scenario gets its own service so the
    mixes cannot contaminate each other's key space.  Returns the results
    in ``backends × scenarios`` order.
    """
    names = list(scenarios) if scenarios else scenario_names()
    results: list[ScenarioResult] = []
    for backend in backends:
        for name in names:
            with tempfile.TemporaryDirectory(prefix="repro-scenario-") as directory:
                config = ServiceConfig(
                    shard_count=shard_count,
                    backend=backend,
                    compressor=compressor,
                    directory=directory if backend == "lsm" else None,
                )
                service = KVService(config)
                try:
                    if compressor != "none":
                        # Trainable codecs need a pattern dictionary before
                        # the first write; train on the mix's own dataset
                        # (drift retraining takes over from there).
                        spec = get_scenario(name)
                        service.train(
                            load_dataset(spec.dataset, count=value_count, seed=seed)
                        )
                    with ThreadedKVServer(service, ServerConfig(port=0)) as server:
                        server_host, server_port = server.address
                        results.append(
                            run_scenario(
                                name,
                                server_host,
                                server_port,
                                backend=backend,
                                operations=operations,
                                rate=rate,
                                workers=workers,
                                records=records,
                                value_count=value_count,
                                seed=seed,
                                timeout=timeout,
                            )
                        )
                finally:
                    service.close()
    return results
