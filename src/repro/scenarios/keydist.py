"""Key-distribution choosers for the YCSB-style scenario mixes.

Each chooser maps ``(rng, record_count)`` to a record index in
``[0, record_count)``.  The ``rng`` is the per-operation
:class:`random.Random` the open-loop load generator seeds from the
operation index, so a chooser's picks are deterministic for a given
workload seed no matter which worker thread runs the operation.

:class:`ZipfianKeyChooser` implements the Gray et al. "Quickly generating
billion-record synthetic databases" algorithm that YCSB's core workloads
use (theta = 0.99), with an incrementally extended zeta cache so the
record space can grow mid-run as inserts land.  The raw zipfian favours
*low* indexes; the chooser scrambles the pick with a multiplicative hash
(YCSB's ``ScrambledZipfian``) so the hot set spreads across the key space
instead of clustering at the front.  :class:`LatestKeyChooser` skips the
scramble and mirrors the pick so the *newest* records are the hot set —
YCSB workload D's "read latest" behaviour.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod

__all__ = [
    "KeyChooser",
    "LatestKeyChooser",
    "UniformKeyChooser",
    "ZipfianKeyChooser",
    "make_chooser",
    "DISTRIBUTIONS",
]

#: YCSB's default zipfian constant.
ZIPFIAN_THETA = 0.99

#: Knuth's multiplicative hash constant (2^32 / phi), used to scramble
#: zipfian picks across the key space deterministically.
_SCRAMBLE = 2654435761


class KeyChooser(ABC):
    """Maps a per-operation RNG to a record index in ``[0, record_count)``."""

    @abstractmethod
    def choose(self, rng: random.Random, record_count: int) -> int:
        """Return a record index in ``[0, record_count)``."""

    def _check(self, record_count: int) -> None:
        if record_count < 1:
            raise ValueError("record_count must be at least 1")


class UniformKeyChooser(KeyChooser):
    """Every record equally likely."""

    def choose(self, rng: random.Random, record_count: int) -> int:
        self._check(record_count)
        return rng.randrange(record_count)


class ZipfianKeyChooser(KeyChooser):
    """Scrambled zipfian over the record space (Gray et al., theta=0.99).

    The zeta partial sums are cached and extended incrementally under a
    lock, so concurrent workers can share one chooser while inserts grow
    the record space; extending from ``n`` to ``n + k`` costs ``O(k)``,
    not ``O(n + k)``.
    """

    def __init__(self, theta: float = ZIPFIAN_THETA, scrambled: bool = True) -> None:
        if not 0.0 < theta < 1.0:
            raise ValueError("zipfian theta must be in (0, 1)")
        self.theta = theta
        self.scrambled = scrambled
        self._alpha = 1.0 / (1.0 - theta)
        self._lock = threading.Lock()
        # zeta(n) = sum_{i=1..n} 1/i^theta, extended incrementally.
        self._zeta_n = 2
        self._zeta = 1.0 + 0.5**theta
        self._zeta2 = self._zeta

    def _zeta_for(self, n: int) -> float:
        with self._lock:
            while self._zeta_n < n:
                self._zeta_n += 1
                self._zeta += 1.0 / self._zeta_n**self.theta
            return self._zeta if self._zeta_n == n else self._partial(n)

    def _partial(self, n: int) -> float:
        # The cache only ever grows; a *smaller* n (record space can't
        # shrink mid-run, but be safe) falls back to a direct sum.
        return sum(1.0 / i**self.theta for i in range(1, n + 1))

    def rank(self, rng: random.Random, record_count: int) -> int:
        """Zipfian *rank*: 0 is the most popular record (no scramble)."""
        self._check(record_count)
        if record_count == 1:
            return 0
        if record_count == 2:
            # Gray's eta is 0/0 at n=2; fall back to the exact two-point law.
            return 0 if rng.random() < 1.0 / self._zeta2 else 1
        zetan = self._zeta_for(record_count)
        eta = (1.0 - (2.0 / record_count) ** (1.0 - self.theta)) / (1.0 - self._zeta2 / zetan)
        u = rng.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return min(int(record_count * (eta * u - eta + 1.0) ** self._alpha), record_count - 1)

    def choose(self, rng: random.Random, record_count: int) -> int:
        rank = self.rank(rng, record_count)
        if not self.scrambled:
            return rank
        return (rank * _SCRAMBLE) % record_count


class LatestKeyChooser(KeyChooser):
    """Zipfian over recency: the newest record is the most popular.

    YCSB workload D's distribution — the zipfian rank counts *backwards*
    from the end of the record space, so freshly inserted records
    immediately become the hot set.
    """

    def __init__(self, theta: float = ZIPFIAN_THETA) -> None:
        self._zipfian = ZipfianKeyChooser(theta, scrambled=False)

    def choose(self, rng: random.Random, record_count: int) -> int:
        self._check(record_count)
        return record_count - 1 - self._zipfian.rank(rng, record_count)


#: Distribution name -> chooser factory, the registry the mixes refer to.
DISTRIBUTIONS: dict[str, type[KeyChooser]] = {
    "uniform": UniformKeyChooser,
    "zipfian": ZipfianKeyChooser,
    "latest": LatestKeyChooser,
}


def make_chooser(name: str) -> KeyChooser:
    """Instantiate the chooser registered under ``name``."""
    try:
        factory = DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown key distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}"
        ) from None
    return factory()
