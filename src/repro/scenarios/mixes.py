"""The scenario registry: YCSB core workloads A–F plus three paper-native mixes.

A :class:`ScenarioSpec` is a frozen description of one workload mix — which
dataset supplies the values, how keys are chosen, and what fraction of
operations are reads, updates, inserts, scans, and read-modify-writes.  The
six ``ycsb_*`` entries follow the published YCSB core-workload definitions;
the three ``paper_*`` entries drive the same machinery with the paper's own
record families (HDFS log lines, GitHub JSON documents, financial trade
ticks) so the scenario suite exercises the compressors on the data the
paper evaluated them on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scenarios.keydist import DISTRIBUTIONS

__all__ = ["ScenarioSpec", "SCENARIOS", "get_scenario", "scenario_names"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One workload mix: dataset + key distribution + operation fractions."""

    name: str
    description: str
    #: dataset (``repro.datasets`` registry name) supplying the values.
    dataset: str
    #: key distribution ("uniform", "zipfian" or "latest").
    distribution: str
    #: operation fractions; must sum to 1.0.
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    #: upper bound on requested scan length (records per scan); required
    #: whenever ``scan > 0``.
    max_scan_length: int = 0

    def __post_init__(self) -> None:
        fractions = (self.read, self.update, self.insert, self.scan, self.rmw)
        if any(fraction < 0.0 for fraction in fractions):
            raise ValueError(f"scenario {self.name!r} has a negative operation fraction")
        if not math.isclose(sum(fractions), 1.0, abs_tol=1e-9):
            raise ValueError(
                f"scenario {self.name!r} fractions sum to {sum(fractions)}, expected 1.0"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"scenario {self.name!r} has unknown distribution {self.distribution!r}"
            )
        if self.scan > 0.0 and self.max_scan_length < 1:
            raise ValueError(f"scenario {self.name!r} scans but has no max_scan_length")


SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "ycsb_a", "update heavy: 50/50 read/update, zipfian",
            dataset="kv1", distribution="zipfian", read=0.50, update=0.50,
        ),
        ScenarioSpec(
            "ycsb_b", "read mostly: 95/5 read/update, zipfian",
            dataset="kv1", distribution="zipfian", read=0.95, update=0.05,
        ),
        ScenarioSpec(
            "ycsb_c", "read only, zipfian",
            dataset="kv1", distribution="zipfian", read=1.0,
        ),
        ScenarioSpec(
            "ycsb_d", "read latest: 95/5 read/insert, newest records hot",
            dataset="kv3", distribution="latest", read=0.95, insert=0.05,
        ),
        ScenarioSpec(
            "ycsb_e", "short ranges: 95/5 scan/insert, zipfian starts",
            dataset="kv1", distribution="zipfian", scan=0.95, insert=0.05,
            max_scan_length=64,
        ),
        ScenarioSpec(
            "ycsb_f", "read-modify-write: 50/50 read/RMW, zipfian",
            dataset="kv1", distribution="zipfian", read=0.50, rmw=0.50,
        ),
        ScenarioSpec(
            "paper_logs", "append-heavy HDFS log ingest with tail scans",
            dataset="hdfs", distribution="latest",
            read=0.25, insert=0.60, scan=0.15, max_scan_length=32,
        ),
        ScenarioSpec(
            "paper_json", "GitHub JSON document store: read-mostly with RMW edits",
            dataset="github", distribution="zipfian",
            read=0.55, update=0.25, rmw=0.10, scan=0.10, max_scan_length=16,
        ),
        ScenarioSpec(
            "paper_trades", "financial trade ticks: update-heavy on recent symbols",
            dataset="trades", distribution="latest",
            read=0.30, update=0.45, insert=0.15, scan=0.10, max_scan_length=32,
        ),
    )
}


def scenario_names() -> list[str]:
    """Registered scenario names, YCSB first then the paper-native mixes."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Return the registry entry for ``name`` (case-insensitive)."""
    key = name.lower()
    if key not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; available: {scenario_names()}")
    return SCENARIOS[key]
