"""``repro.scenarios`` — YCSB-style workload mixes with a built-in oracle.

Proves the scan path (and everything under it) under realistic traffic
shapes, modelled on the YCSB core workloads the paper's production store
was evaluated against:

* :mod:`repro.scenarios.keydist` — key-distribution choosers: uniform,
  scrambled zipfian (Gray et al., theta=0.99, incrementally extended zeta
  cache), and "latest" (newest records hot — YCSB workload D);
* :mod:`repro.scenarios.mixes` — the :class:`ScenarioSpec` registry:
  ``ycsb_a`` … ``ycsb_f`` plus three paper-native mixes (``paper_logs``
  HDFS ingest, ``paper_json`` GitHub documents, ``paper_trades``
  financial ticks) that drive the same machinery with the paper's own
  record families;
* :mod:`repro.scenarios.runner` — :func:`run_scenario` plugs a mix into
  the open-loop wire load generator
  (:func:`repro.net.loadgen.run_open_loop_workload`) with an operation
  callback that doubles as a correctness oracle (value-universe checks,
  scan ordering/completeness against an acknowledged record counter);
  :func:`run_suite` runs the mix matrix against in-process servers on
  both backends and returns machine-readable per-mix rows.

Quick start::

    from repro.scenarios import run_suite

    rows = [result.row() for result in run_suite(["ycsb_a", "ycsb_e"],
                                                 backends=("tierbase",),
                                                 operations=256, rate=2000)]
    assert all(row["lost"] == 0 and row["corrupt"] == 0 for row in rows)

Or from the command line: ``repro scenarios --ops 512 --rate 2000``.
"""

from repro.scenarios.keydist import (
    DISTRIBUTIONS,
    KeyChooser,
    LatestKeyChooser,
    UniformKeyChooser,
    ZipfianKeyChooser,
    make_chooser,
)
from repro.scenarios.mixes import SCENARIOS, ScenarioSpec, get_scenario, scenario_names
from repro.scenarios.runner import ScenarioResult, key_for, run_scenario, run_suite

__all__ = [
    "DISTRIBUTIONS",
    "KeyChooser",
    "LatestKeyChooser",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioSpec",
    "UniformKeyChooser",
    "ZipfianKeyChooser",
    "get_scenario",
    "key_for",
    "make_chooser",
    "run_scenario",
    "run_suite",
    "scenario_names",
]
