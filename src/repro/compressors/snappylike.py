"""Snappy-like codec: varint-tagged literal / copy elements, no entropy stage.

Mirrors the structure of Google's Snappy format (uncompressed-length header
followed by literal and copy elements); the element encoding is simplified to
varints, which keeps it byte-oriented and fast while preserving Snappy's
ratio/speed character relative to the other baselines.
"""

from __future__ import annotations

from repro.compressors.base import Codec, register_codec
from repro.compressors.lz77 import tokenize
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError

_LITERAL_TAG = 0
_COPY_TAG = 1


class SnappyLikeCodec(Codec):
    """Pure-Python Snappy-format-style codec (see docs/ARCHITECTURE.md substitutions)."""

    name = "Snappy"

    def __init__(self, max_chain: int = 4) -> None:
        self.max_chain = max_chain

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        out += encode_uvarint(len(data))
        for token in tokenize(data, window=1 << 15, max_chain=self.max_chain):
            if token.literals:
                out.append(_LITERAL_TAG)
                out += encode_uvarint(len(token.literals))
                out += token.literals
            if token.offset:
                out.append(_COPY_TAG)
                out += encode_uvarint(token.offset)
                out += encode_uvarint(token.length)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        expected, position = decode_uvarint(data, 0)
        out = bytearray()
        length = len(data)
        while position < length:
            tag = data[position]
            position += 1
            if tag == _LITERAL_TAG:
                literal_length, position = decode_uvarint(data, position)
                end = position + literal_length
                if end > length:
                    raise DecodingError("truncated Snappy literal")
                out += data[position:end]
                position = end
            elif tag == _COPY_TAG:
                offset, position = decode_uvarint(data, position)
                copy_length, position = decode_uvarint(data, position)
                start = len(out) - offset
                if start < 0:
                    raise DecodingError("Snappy copy offset out of range")
                for index in range(copy_length):
                    out.append(out[start + index])
            else:
                raise DecodingError(f"unknown Snappy element tag {tag}")
        if len(out) != expected:
            raise DecodingError("Snappy payload length mismatch")
        return bytes(out)


register_codec("snappy", SnappyLikeCodec)
