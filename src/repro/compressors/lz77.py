"""Shared LZ77 match finder used by the LZ4-like, Snappy-like and Zstd-like codecs.

The match finder is a classic hash-table / hash-chain design: 4-byte sequences
are hashed into a table of chain heads, and candidate positions are verified and
extended.  It emits a token stream of ``(literals, offset, length)`` tuples that
the individual codecs serialise in their own formats.
"""

from __future__ import annotations

from dataclasses import dataclass

_MIN_MATCH = 4
_HASH_BITS = 16
_HASH_SIZE = 1 << _HASH_BITS


def _hash4(data: bytes, position: int) -> int:
    """Hash of the 4 bytes starting at ``position`` (caller guarantees bounds)."""
    value = (
        data[position]
        | (data[position + 1] << 8)
        | (data[position + 2] << 16)
        | (data[position + 3] << 24)
    )
    return (value * 2654435761) >> (32 - _HASH_BITS) & (_HASH_SIZE - 1)


@dataclass(frozen=True)
class LZToken:
    """One LZ77 token: a run of literals optionally followed by a back-reference."""

    literals: bytes
    offset: int  # 0 means "no match" (final literal run)
    length: int  # match length; 0 when offset is 0


def tokenize(
    data: bytes,
    window: int = 1 << 16,
    max_chain: int = 16,
    min_match: int = _MIN_MATCH,
    prefix: bytes = b"",
) -> list[LZToken]:
    """Greedy LZ77 tokenisation of ``data``.

    ``prefix`` is prepended to the search history without being emitted — this is
    how dictionary compression works (the Zstd-like codec passes the trained
    dictionary here and the decompressor seeds its output window with it).
    """
    history = prefix + data
    base = len(prefix)
    length = len(history)
    tokens: list[LZToken] = []
    head: dict[int, int] = {}
    chain: dict[int, int] = {}

    # Index the prefix so matches can point into the dictionary.
    for position in range(0, max(0, base - min_match + 1)):
        key = _hash4(history, position)
        if key in head:
            chain[position] = head[key]
        head[key] = position

    literal_start = base
    position = base
    while position < length:
        best_length = 0
        best_offset = 0
        if position + min_match <= length:
            key = _hash4(history, position)
            candidate = head.get(key)
            tries = max_chain
            limit = position - window
            while candidate is not None and candidate >= 0 and tries > 0:
                if candidate < limit:
                    break
                if history[candidate] == history[position]:
                    match_length = _match_length(history, candidate, position, length)
                    if match_length >= min_match and match_length > best_length:
                        best_length = match_length
                        best_offset = position - candidate
                candidate = chain.get(candidate)
                tries -= 1
        if best_length >= min_match:
            tokens.append(
                LZToken(
                    literals=history[literal_start:position],
                    offset=best_offset,
                    length=best_length,
                )
            )
            # Insert hash entries for the matched region (sparsely, for speed).
            end = position + best_length
            step = 1 if best_length <= 32 else 3
            insert_limit = min(end, length - min_match + 1)
            while position < insert_limit:
                key = _hash4(history, position)
                if key in head:
                    chain[position] = head[key]
                head[key] = position
                position += step
            position = end
            literal_start = position
        else:
            if position + min_match <= length:
                key = _hash4(history, position)
                if key in head:
                    chain[position] = head[key]
                head[key] = position
            position += 1

    if literal_start < length or not tokens:
        tokens.append(LZToken(literals=history[literal_start:length], offset=0, length=0))
    return tokens


def _match_length(history: bytes, candidate: int, position: int, limit: int) -> int:
    """Length of the common prefix of ``history[candidate:]`` and ``history[position:]``."""
    length = 0
    maximum = limit - position
    while length < maximum and history[candidate + length] == history[position + length]:
        length += 1
    return length


def detokenize(tokens: list[LZToken], prefix: bytes = b"") -> bytes:
    """Rebuild the original payload from a token stream (used by tests)."""
    out = bytearray(prefix)
    for token in tokens:
        out += token.literals
        if token.offset:
            start = len(out) - token.offset
            for index in range(token.length):
                out.append(out[start + index])
    return bytes(out[len(prefix):])
