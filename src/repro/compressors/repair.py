"""Re-Pair grammar-based compression (Larsson & Moffat, related work Section 2.1).

Re-Pair repeatedly replaces the most frequent adjacent symbol pair with a new
non-terminal until no pair occurs more than once, producing a straight-line
context-free grammar for the input.  The paper cites grammar-based compression
as a high-ratio but expensive family; this baseline lets the benchmarks place
PBC against it on the ratio/speed plane.

The implementation is a pass-based approximation of the classic algorithm: each
pass counts all adjacent pairs, replaces every non-overlapping occurrence of the
most frequent pair, and stops when the best pair occurs fewer than
``min_pair_count`` times or the rule budget is exhausted.  The serialised form
is ``uvarint(rule_count) + rules + uvarint(sequence_length) + sequence`` with
every symbol stored as a varint (terminals 0-255, non-terminals 256+), and the
whole payload optionally passed through the canonical Huffman stage.
"""

from __future__ import annotations

from collections import Counter

from repro.compressors.base import Codec, register_codec
from repro.entropy.huffman import HuffmanDecoder, HuffmanEncoder
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError

#: First symbol id available for grammar non-terminals.
_FIRST_NONTERMINAL = 256


def build_grammar(
    data: bytes, max_rules: int = 4096, min_pair_count: int = 3
) -> tuple[list[tuple[int, int]], list[int]]:
    """Build a Re-Pair grammar; returns ``(rules, final_sequence)``.

    ``rules[i]`` expands non-terminal ``256 + i`` into a pair of symbols (each a
    terminal byte or an earlier non-terminal).
    """
    sequence: list[int] = list(data)
    rules: list[tuple[int, int]] = []
    while len(rules) < max_rules and len(sequence) > 1:
        counts = Counter(zip(sequence, sequence[1:]))
        pair, count = counts.most_common(1)[0]
        if count < min_pair_count:
            break
        symbol = _FIRST_NONTERMINAL + len(rules)
        rules.append(pair)
        replaced: list[int] = []
        index = 0
        length = len(sequence)
        first, second = pair
        while index < length:
            if index + 1 < length and sequence[index] == first and sequence[index + 1] == second:
                replaced.append(symbol)
                index += 2
            else:
                replaced.append(sequence[index])
                index += 1
        sequence = replaced
    return rules, sequence


def expand_grammar(rules: list[tuple[int, int]], sequence: list[int]) -> bytes:
    """Expand ``sequence`` back into bytes using ``rules``."""
    expansions: list[bytes] = []
    for left, right in rules:
        left_bytes = bytes([left]) if left < _FIRST_NONTERMINAL else expansions[left - _FIRST_NONTERMINAL]
        right_bytes = bytes([right]) if right < _FIRST_NONTERMINAL else expansions[right - _FIRST_NONTERMINAL]
        expansions.append(left_bytes + right_bytes)
    out = bytearray()
    for symbol in sequence:
        if symbol < _FIRST_NONTERMINAL:
            out.append(symbol)
        else:
            index = symbol - _FIRST_NONTERMINAL
            if index >= len(expansions):
                raise DecodingError(f"Re-Pair sequence references unknown rule {symbol}")
            out += expansions[index]
    return bytes(out)


class RePairCodec(Codec):
    """Grammar-based block codec built on the pass-based Re-Pair construction."""

    name = "RePair"

    def __init__(self, max_rules: int = 4096, min_pair_count: int = 3, entropy_stage: bool = True) -> None:
        if max_rules < 0:
            raise ValueError("max_rules must be non-negative")
        if min_pair_count < 2:
            raise ValueError("min_pair_count must be at least 2")
        self.max_rules = max_rules
        self.min_pair_count = min_pair_count
        self.entropy_stage = entropy_stage

    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` into a serialised grammar (+ optional Huffman stage)."""
        rules, sequence = build_grammar(data, self.max_rules, self.min_pair_count)
        body = bytearray()
        body += encode_uvarint(len(rules))
        for left, right in rules:
            body += encode_uvarint(left)
            body += encode_uvarint(right)
        body += encode_uvarint(len(sequence))
        for symbol in sequence:
            body += encode_uvarint(symbol)
        if self.entropy_stage:
            return b"\x01" + HuffmanEncoder().encode(bytes(body))
        return b"\x00" + bytes(body)

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        if not data:
            raise DecodingError("empty Re-Pair payload")
        marker, body = data[0], data[1:]
        if marker == 1:
            body = HuffmanDecoder().decode(body)
        elif marker != 0:
            raise DecodingError(f"unknown Re-Pair framing marker {marker}")
        rule_count, offset = decode_uvarint(body, 0)
        rules: list[tuple[int, int]] = []
        for _ in range(rule_count):
            left, offset = decode_uvarint(body, offset)
            right, offset = decode_uvarint(body, offset)
            rules.append((left, right))
        sequence_length, offset = decode_uvarint(body, offset)
        sequence: list[int] = []
        for _ in range(sequence_length):
            symbol, offset = decode_uvarint(body, offset)
            sequence.append(symbol)
        return expand_grammar(rules, sequence)


register_codec("repair", RePairCodec)
