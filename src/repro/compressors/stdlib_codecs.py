"""Wrappers around the real stdlib codecs (DEFLATE/Gzip and LZMA).

These are the two baselines for which Python ships genuine implementations, so
their ratios are directly comparable to the paper; the remaining baselines are
pure-Python re-implementations (see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import lzma
import zlib

from repro.compressors.base import Codec, register_codec


class GzipCodec(Codec):
    """DEFLATE (the algorithm behind Gzip) via ``zlib``."""

    name = "Gzip"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class LZMACodec(Codec):
    """LZMA via the stdlib ``lzma`` module (the paper's highest-ratio LZ baseline)."""

    name = "LZMA"

    def __init__(self, preset: int = 6) -> None:
        if not 0 <= preset <= 9:
            raise ValueError("lzma preset must be in [0, 9]")
        self.preset = preset

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress(self, data: bytes) -> bytes:
        return lzma.decompress(data)


register_codec("gzip", GzipCodec)
register_codec("lzma", LZMACodec)
