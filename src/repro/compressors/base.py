"""Codec interface and registry for the baseline compressors."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence


class Codec(ABC):
    """A block codec: compresses and decompresses byte payloads."""

    #: name used in reports and by the registry.
    name: str = "codec"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` into an opaque payload."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""

    def compress_record(self, record: str) -> bytes:
        """Convenience helper for per-record (line-by-line) compression."""
        return self.compress(record.encode("utf-8"))

    def decompress_record(self, data: bytes) -> str:
        """Inverse of :meth:`compress_record`."""
        return self.decompress(data).decode("utf-8")


@dataclass
class CodecMeasurement:
    """Ratio and throughput of one codec over one payload set."""

    name: str
    original_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def ratio(self) -> float:
        """Compressed size divided by original size (lower is better)."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def compress_mb_per_second(self) -> float:
        """Compression throughput in MB/s of original data."""
        if self.compress_seconds <= 0:
            return 0.0
        return self.original_bytes / 1e6 / self.compress_seconds

    @property
    def decompress_mb_per_second(self) -> float:
        """Decompression throughput in MB/s of original data."""
        if self.decompress_seconds <= 0:
            return 0.0
        return self.original_bytes / 1e6 / self.decompress_seconds


def measure_codec(codec: Codec, payloads: Sequence[bytes]) -> CodecMeasurement:
    """Compress and decompress every payload, verify the roundtrip, and time it."""
    started = time.perf_counter()
    compressed = [codec.compress(payload) for payload in payloads]
    compress_seconds = time.perf_counter() - started
    started = time.perf_counter()
    restored = [codec.decompress(blob) for blob in compressed]
    decompress_seconds = time.perf_counter() - started
    for original, result in zip(payloads, restored):
        if original != result:
            raise AssertionError(f"codec {codec.name} roundtrip mismatch")
    return CodecMeasurement(
        name=codec.name,
        original_bytes=sum(len(payload) for payload in payloads),
        compressed_bytes=sum(len(blob) for blob in compressed),
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
    )


_REGISTRY: dict[str, Callable[[], Codec]] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.lower()] = factory


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a registered codec by name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown codec {name!r}; available: {sorted(_REGISTRY)}")
    factory = _REGISTRY[key]
    return factory(**kwargs) if kwargs else factory()


def available_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)
