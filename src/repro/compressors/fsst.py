"""FSST-style symbol-table compression (Boncz, Neumann, Leis; VLDB 2020).

FSST ("Fast Static Symbol Table") replaces frequently occurring byte sequences
of length 1-8 with one-byte codes from a table of at most 255 symbols; bytes not
covered by any symbol are emitted verbatim behind an escape code.  Because every
input string is compressed independently against a *static* table, random access
to individual records is preserved — the property the paper's PBC_F variant and
the Figure 5 experiment rely on.

This is a faithful pure-Python re-implementation of the algorithm family (see
docs/ARCHITECTURE.md, substitution 3): iterative training that grows symbols by
concatenating adjacent symbols of the previous generation, gain-based selection
of the best 255 symbols, greedy longest-match encoding, and an escape byte for
uncovered bytes.  Only the raw speed of the original (which relies on AVX512)
is not reproduced.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.compressors.base import Codec, register_codec
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError

#: Code emitted before a verbatim byte that is not covered by any symbol.
ESCAPE_CODE = 255

#: Maximum number of learned symbols (code 255 is reserved for the escape).
MAX_SYMBOLS = 255

#: Maximum symbol length in bytes (as in the original FSST).
MAX_SYMBOL_LENGTH = 8


class SymbolTable:
    """A static FSST symbol table: at most 255 byte-string symbols.

    The table knows how to encode (greedy longest match per position) and how
    to decode (direct code -> symbol lookup), and can be serialised so that a
    trained table can be stored next to the compressed data.
    """

    def __init__(self, symbols: Sequence[bytes] = ()) -> None:
        if len(symbols) > MAX_SYMBOLS:
            raise ValueError(f"symbol table holds at most {MAX_SYMBOLS} symbols")
        self.symbols: list[bytes] = [bytes(symbol) for symbol in symbols]
        for symbol in self.symbols:
            if not symbol or len(symbol) > MAX_SYMBOL_LENGTH:
                raise ValueError("symbols must be 1-8 bytes long")
        # Encoding index: first byte -> [(symbol, code)] sorted by length (longest first).
        self._by_first_byte: dict[int, list[tuple[bytes, int]]] = {}
        for code, symbol in enumerate(self.symbols):
            self._by_first_byte.setdefault(symbol[0], []).append((symbol, code))
        for candidates in self._by_first_byte.values():
            candidates.sort(key=lambda item: len(item[0]), reverse=True)

    def __len__(self) -> int:
        return len(self.symbols)

    # ---------------------------------------------------------------- encode

    def encode(self, data: bytes) -> bytes:
        """Encode ``data`` with greedy longest-symbol matching."""
        out = bytearray()
        position = 0
        length = len(data)
        by_first = self._by_first_byte
        while position < length:
            candidates = by_first.get(data[position])
            matched = False
            if candidates:
                for symbol, code in candidates:
                    end = position + len(symbol)
                    if data[position:end] == symbol:
                        out.append(code)
                        position = end
                        matched = True
                        break
            if not matched:
                out.append(ESCAPE_CODE)
                out.append(data[position])
                position += 1
        return bytes(out)

    def decode(self, data: bytes) -> bytes:
        """Invert :meth:`encode`."""
        out = bytearray()
        position = 0
        length = len(data)
        symbols = self.symbols
        while position < length:
            code = data[position]
            position += 1
            if code == ESCAPE_CODE:
                if position >= length:
                    raise DecodingError("truncated FSST escape sequence")
                out.append(data[position])
                position += 1
                continue
            if code >= len(symbols):
                raise DecodingError(f"FSST code {code} outside symbol table")
            out += symbols[code]
        return bytes(out)

    # ------------------------------------------------------------- persistence

    def to_bytes(self) -> bytes:
        """Serialise the table (symbol count, then length-prefixed symbols)."""
        out = bytearray()
        out += encode_uvarint(len(self.symbols))
        for symbol in self.symbols:
            out += encode_uvarint(len(symbol))
            out += symbol
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> tuple["SymbolTable", int]:
        """Deserialise a table; returns ``(table, next_offset)``."""
        count, offset = decode_uvarint(data, offset)
        symbols: list[bytes] = []
        for _ in range(count):
            length, offset = decode_uvarint(data, offset)
            end = offset + length
            if end > len(data):
                raise DecodingError("truncated FSST symbol table")
            symbols.append(data[offset:end])
            offset = end
        return cls(symbols), offset


def train_symbol_table(
    samples: Iterable[bytes],
    generations: int = 5,
    max_symbols: int = MAX_SYMBOLS,
    sample_byte_budget: int = 1 << 20,
) -> SymbolTable:
    """Train an FSST symbol table on sample payloads.

    The training loop mirrors the published algorithm: starting from single-byte
    symbols, each generation encodes the sample with the current table and
    counts (a) how often each symbol is used and (b) how often two symbols occur
    adjacently.  Concatenations of adjacent symbols (up to 8 bytes) become
    candidates for the next generation; candidates are ranked by *gain*
    (frequency times bytes saved versus escaping) and the best ``max_symbols``
    survive.
    """
    corpus = bytearray()
    for payload in samples:
        corpus += payload
        if len(corpus) >= sample_byte_budget:
            break
    sample = bytes(corpus)
    if not sample:
        return SymbolTable()

    # Generation 0: the most common single bytes.
    byte_counts = Counter(sample)
    table = SymbolTable(
        [bytes([value]) for value, _ in byte_counts.most_common(max_symbols)]
    )

    for _ in range(max(1, generations)):
        symbol_counts: Counter = Counter()
        pair_counts: Counter = Counter()
        previous_symbol: bytes | None = None
        position = 0
        length = len(sample)
        by_first = table._by_first_byte
        while position < length:
            candidates = by_first.get(sample[position])
            current: bytes
            if candidates:
                for symbol, _code in candidates:
                    end = position + len(symbol)
                    if sample[position:end] == symbol:
                        current = symbol
                        position = end
                        break
                else:
                    current = sample[position : position + 1]
                    position += 1
            else:
                current = sample[position : position + 1]
                position += 1
            symbol_counts[current] += 1
            if previous_symbol is not None:
                combined_length = len(previous_symbol) + len(current)
                if combined_length <= MAX_SYMBOL_LENGTH:
                    pair_counts[previous_symbol + current] += 1
            previous_symbol = current

        candidates_gain: Counter = Counter()
        for symbol, count in symbol_counts.items():
            # Gain of keeping the symbol: bytes saved relative to escaping every byte.
            candidates_gain[symbol] = count * (2 * len(symbol) - 1)
        for symbol, count in pair_counts.items():
            candidates_gain[symbol] += count * (2 * len(symbol) - 1)
        best = [symbol for symbol, _gain in candidates_gain.most_common(max_symbols)]
        table = SymbolTable(best)

    return table


class FSSTCodec(Codec):
    """FSST as a :class:`~repro.compressors.base.Codec`.

    When used untrained the codec behaves as a pass-through with escapes (every
    byte costs two bytes), so callers are expected to :meth:`train` it first —
    exactly like the real FSST, whose symbol table is built from a sample of the
    column to compress.  Payloads produced by :meth:`compress` are prefixed with
    a varint original-length header so decompression can validate its output.
    """

    name = "FSST"

    def __init__(self, table: SymbolTable | None = None) -> None:
        self.table = table if table is not None else SymbolTable()

    @property
    def is_trained(self) -> bool:
        """Whether a non-empty symbol table is installed."""
        return len(self.table) > 0

    def train(self, samples: Iterable[bytes], generations: int = 5) -> SymbolTable:
        """Train the symbol table on sample payloads and install it."""
        self.table = train_symbol_table(samples, generations=generations)
        return self.table

    def compress(self, data: bytes) -> bytes:
        return encode_uvarint(len(data)) + self.table.encode(data)

    def decompress(self, data: bytes) -> bytes:
        expected, offset = decode_uvarint(data, 0)
        payload = self.table.decode(data[offset:])
        if len(payload) != expected:
            raise DecodingError(
                f"FSST payload length mismatch: expected {expected}, got {len(payload)}"
            )
        return payload


register_codec("fsst", FSSTCodec)
