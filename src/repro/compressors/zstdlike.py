"""Zstd-like codec: LZ77 dictionary matching plus a canonical-Huffman entropy stage.

Real Zstandard combines a large-window LZ77 matcher with FSE/Huffman entropy
coding and offers (a) multiple compression levels trading search effort for
ratio and (b) an offline dictionary-training mode that makes short payloads
compressible.  This module re-implements that architecture in pure Python (see
docs/ARCHITECTURE.md, substitution 3):

* :class:`ZstdLikeCodec` — hash-chain LZ77 tokenisation (shared with the other
  LZ codecs), a compact token serialisation, and an optional Huffman pass over
  the serialised stream.  Levels 1-19 map to increasing match-search effort.
* :func:`train_dictionary` — sample-based dictionary training: the most
  redundancy-covering sample substrings are concatenated into a prefix
  dictionary that both compressor and decompressor seed their windows with,
  which is how the ``Zstd(dict)`` / ``LZ4(dict)`` baselines of Table 3 work.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.compressors.base import Codec, register_codec
from repro.compressors.lz77 import LZToken, tokenize
from repro.entropy.huffman import HuffmanDecoder, HuffmanEncoder
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError

#: Frame flags (first payload byte).
_RAW_FRAME = 0  # token stream stored as-is
_HUFFMAN_FRAME = 1  # token stream passed through the Huffman entropy stage

#: Per-level match-finder effort, loosely mirroring Zstd's level ladder.
_LEVEL_PARAMETERS: dict[int, tuple[int, int]] = {
    1: (4, 1 << 16),
    3: (16, 1 << 17),
    6: (32, 1 << 17),
    9: (64, 1 << 18),
    12: (96, 1 << 18),
    19: (160, 1 << 18),
}


def _level_parameters(level: int) -> tuple[int, int]:
    """Map a compression level to ``(max_chain, window)``."""
    if level < 1:
        level = 1
    chosen = max(key for key in _LEVEL_PARAMETERS if key <= level)
    return _LEVEL_PARAMETERS[chosen]


def _serialize_tokens(tokens: Sequence[LZToken]) -> bytes:
    """Serialise an LZ77 token stream (varint literal-length, offset, match-length)."""
    out = bytearray()
    for token in tokens:
        out += encode_uvarint(len(token.literals))
        out += token.literals
        out += encode_uvarint(token.offset)
        if token.offset:
            out += encode_uvarint(token.length)
    return bytes(out)


def _deserialize_tokens(data: bytes) -> list[LZToken]:
    """Invert :func:`_serialize_tokens`."""
    tokens: list[LZToken] = []
    position = 0
    length = len(data)
    while position < length:
        literal_length, position = decode_uvarint(data, position)
        end = position + literal_length
        if end > length:
            raise DecodingError("truncated Zstd-like literal run")
        literals = data[position:end]
        position = end
        if position >= length:
            tokens.append(LZToken(literals=literals, offset=0, length=0))
            break
        offset, position = decode_uvarint(data, position)
        if offset:
            match_length, position = decode_uvarint(data, position)
        else:
            match_length = 0
        tokens.append(LZToken(literals=literals, offset=offset, length=match_length))
    return tokens


class ZstdLikeCodec(Codec):
    """Pure-Python Zstd-architecture codec with levels and dictionary support."""

    name = "Zstd"

    def __init__(self, level: int = 3, dictionary: bytes = b"") -> None:
        if level < 1 or level > 22:
            raise ValueError("Zstd-like level must be in [1, 22]")
        self.level = level
        self.dictionary = dictionary
        self._max_chain, self._window = _level_parameters(level)
        self._huffman_encoder = HuffmanEncoder()
        self._huffman_decoder = HuffmanDecoder()

    # ------------------------------------------------------------------ write

    def compress(self, data: bytes) -> bytes:
        tokens = tokenize(
            data,
            window=self._window,
            max_chain=self._max_chain,
            prefix=self.dictionary,
        )
        stream = _serialize_tokens(tokens)
        entropy_coded = self._huffman_encoder.encode(stream)
        if len(entropy_coded) < len(stream):
            return bytes([_HUFFMAN_FRAME]) + entropy_coded
        return bytes([_RAW_FRAME]) + stream

    # ------------------------------------------------------------------- read

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise DecodingError("empty Zstd-like frame")
        frame_type = data[0]
        body = data[1:]
        if frame_type == _HUFFMAN_FRAME:
            stream = self._huffman_decoder.decode(body)
        elif frame_type == _RAW_FRAME:
            stream = body
        else:
            raise DecodingError(f"unknown Zstd-like frame type {frame_type}")
        tokens = _deserialize_tokens(stream)
        out = bytearray(self.dictionary)
        base = len(self.dictionary)
        for token in tokens:
            out += token.literals
            if token.offset:
                start = len(out) - token.offset
                if start < 0:
                    raise DecodingError("Zstd-like match offset out of range")
                for index in range(token.length):
                    out.append(out[start + index])
        return bytes(out[base:])


def train_dictionary(
    samples: Iterable[bytes],
    max_size: int = 4096,
    segment_length: int = 16,
    sample_limit: int = 4096,
) -> bytes:
    """Train a prefix dictionary from sample payloads (Zstd's ``--train`` mode).

    The trainer scores fixed-length segments of the samples by how often their
    content recurs across the corpus (k-gram frequency) and concatenates the
    highest-scoring distinct segments until ``max_size`` bytes are used.  The
    result is a byte string that compressors prepend to their match window so
    short payloads can reference it — the mechanism that makes per-record
    compression of short machine-generated records effective (Table 3's
    ``Zstd(dict)`` and ``LZ4(dict)`` baselines).
    """
    collected: list[bytes] = []
    for index, payload in enumerate(samples):
        if index >= sample_limit:
            break
        if payload:
            collected.append(bytes(payload))
    if not collected:
        return b""

    gram_length = 8
    gram_counts: Counter = Counter()
    for payload in collected:
        limit = len(payload) - gram_length + 1
        for position in range(0, max(limit, 0)):
            gram_counts[payload[position : position + gram_length]] += 1

    def segment_score(segment: bytes) -> int:
        limit = len(segment) - gram_length + 1
        if limit <= 0:
            return gram_counts.get(segment, 0)
        return sum(
            gram_counts.get(segment[position : position + gram_length], 0)
            for position in range(limit)
        )

    scored_segments: list[tuple[int, bytes]] = []
    seen: set[bytes] = set()
    for payload in collected:
        for position in range(0, len(payload), segment_length):
            segment = payload[position : position + segment_length]
            if len(segment) < 4 or segment in seen:
                continue
            seen.add(segment)
            scored_segments.append((segment_score(segment), segment))

    scored_segments.sort(key=lambda item: item[0], reverse=True)
    dictionary = bytearray()
    for _score, segment in scored_segments:
        if len(dictionary) + len(segment) > max_size:
            continue
        dictionary += segment
        if len(dictionary) >= max_size:
            break
    return bytes(dictionary)


register_codec("zstd", ZstdLikeCodec)
