"""LZ4-like codec: byte-oriented LZ77 without an entropy stage.

The format follows the structure of real LZ4 block compression (token byte with
literal-length and match-length nibbles, little-endian 2-byte offsets, 255-run
length extensions) so the speed/ratio character matches the original: very fast,
modest compression ratio.
"""

from __future__ import annotations

from repro.compressors.base import Codec, register_codec
from repro.compressors.lz77 import LZToken, tokenize
from repro.exceptions import DecodingError

_MIN_MATCH = 4
_MAX_OFFSET = (1 << 16) - 1


class LZ4LikeCodec(Codec):
    """Pure-Python LZ4-format-style codec (see docs/ARCHITECTURE.md substitutions)."""

    name = "LZ4"

    def __init__(self, max_chain: int = 8, dictionary: bytes = b"") -> None:
        self.max_chain = max_chain
        self.dictionary = dictionary

    # ------------------------------------------------------------------ write

    def compress(self, data: bytes) -> bytes:
        tokens = tokenize(
            data,
            window=_MAX_OFFSET,
            max_chain=self.max_chain,
            min_match=_MIN_MATCH,
            prefix=self.dictionary,
        )
        out = bytearray()
        for index, token in enumerate(tokens):
            is_last = index == len(tokens) - 1
            self._write_sequence(out, token, is_last)
        return bytes(out)

    def _write_sequence(self, out: bytearray, token: LZToken, is_last: bool) -> None:
        literal_length = len(token.literals)
        match_length = token.length - _MIN_MATCH if token.offset else 0
        token_byte = (min(literal_length, 15) << 4) | (min(match_length, 15) if token.offset else 0)
        out.append(token_byte)
        self._write_extended(out, literal_length, 15)
        out += token.literals
        if token.offset:
            out.append(token.offset & 0xFF)
            out.append((token.offset >> 8) & 0xFF)
            self._write_extended(out, match_length, 15)
        elif not is_last:
            # A no-match token in the middle of the stream encodes offset 0.
            out.append(0)
            out.append(0)

    @staticmethod
    def _write_extended(out: bytearray, value: int, threshold: int) -> None:
        """LZ4-style length extension: 255-bytes runs after the nibble saturates."""
        if value < threshold:
            return
        remaining = value - threshold
        while remaining >= 255:
            out.append(255)
            remaining -= 255
        out.append(remaining)

    # ------------------------------------------------------------------- read

    def decompress(self, data: bytes) -> bytes:
        out = bytearray(self.dictionary)
        base = len(self.dictionary)
        position = 0
        length = len(data)
        while position < length:
            token_byte = data[position]
            position += 1
            literal_length = token_byte >> 4
            match_nibble = token_byte & 0x0F
            literal_length, position = self._read_extended(data, position, literal_length, 15)
            end = position + literal_length
            if end > length:
                raise DecodingError("truncated LZ4 literals")
            out += data[position:end]
            position = end
            if position >= length:
                break
            offset = data[position] | (data[position + 1] << 8)
            position += 2
            if offset == 0:
                continue
            match_length, position = self._read_extended(data, position, match_nibble, 15)
            match_length += _MIN_MATCH
            start = len(out) - offset
            if start < 0:
                raise DecodingError("LZ4 offset out of range")
            for index in range(match_length):
                out.append(out[start + index])
        return bytes(out[base:])

    @staticmethod
    def _read_extended(data: bytes, position: int, value: int, threshold: int) -> tuple[int, int]:
        if value < threshold:
            return value, position
        while True:
            if position >= len(data):
                raise DecodingError("truncated LZ4 length extension")
            extra = data[position]
            position += 1
            value += extra
            if extra != 255:
                return value, position


register_codec("lz4", LZ4LikeCodec)
