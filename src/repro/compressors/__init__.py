"""Baseline compression codecs used in the paper's evaluation.

All codecs implement the small :class:`repro.compressors.base.Codec` interface
(``compress`` / ``decompress`` over ``bytes``) so benchmarks and the storage
substrates can treat them interchangeably.  The registry
(:func:`get_codec`, :func:`available_codecs`) exposes them by the names used in
the paper's tables.

Substitutions (see docs/ARCHITECTURE.md): Zstd, LZ4, Snappy and FSST are pure-Python
re-implementations of the respective algorithm families; Gzip and LZMA use the
real stdlib codecs.
"""

from repro.compressors.base import Codec, available_codecs, get_codec, register_codec
from repro.compressors.fsst import FSSTCodec
from repro.compressors.lz4like import LZ4LikeCodec
from repro.compressors.repair import RePairCodec
from repro.compressors.sequitur import SequiturCodec
from repro.compressors.snappylike import SnappyLikeCodec
from repro.compressors.stdlib_codecs import GzipCodec, LZMACodec
from repro.compressors.zstdlike import ZstdLikeCodec, train_dictionary

__all__ = [
    "Codec",
    "FSSTCodec",
    "GzipCodec",
    "LZ4LikeCodec",
    "LZMACodec",
    "RePairCodec",
    "SequiturCodec",
    "SnappyLikeCodec",
    "ZstdLikeCodec",
    "available_codecs",
    "get_codec",
    "register_codec",
    "train_dictionary",
]
