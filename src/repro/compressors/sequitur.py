"""Sequitur grammar inference (Nevill-Manning & Witten, related work Section 2.1).

Sequitur builds a context-free grammar for its input incrementally, enforcing
two invariants after every appended symbol:

* **digram uniqueness** — no pair of adjacent symbols occurs more than once in
  the grammar; a repeated digram is replaced by (or promoted to) a rule, and
* **rule utility** — every rule is referenced at least twice; a rule used only
  once is inlined and removed.

The serialised form mirrors :mod:`repro.compressors.repair`: rules as symbol
pair-lists, then the start rule, all varint-coded and optionally passed through
the canonical Huffman stage.  Sequitur is the second grammar-based baseline the
benchmarks can place PBC against (Re-Pair being the other).
"""

from __future__ import annotations

from repro.compressors.base import Codec, register_codec
from repro.entropy.huffman import HuffmanDecoder, HuffmanEncoder
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError

#: First symbol id available for grammar rules (0-255 are terminal bytes).
_FIRST_RULE_ID = 256


class _Grammar:
    """Mutable Sequitur grammar: rule 0 is the start rule."""

    def __init__(self) -> None:
        self.rules: list[list[int]] = [[]]  # rule index -> symbol list
        self.rule_uses: list[int] = [1]  # reference counts (start rule counts as used)
        self.digrams: dict[tuple[int, int], tuple[int, int]] = {}  # digram -> (rule, position)

    # -- digram index maintenance -------------------------------------------

    def _unlink_digrams_at(self, rule_index: int, position: int) -> None:
        """Forget index entries whose left symbol sits at ``position`` or one before."""
        symbols = self.rules[rule_index]
        for start in (position - 1, position):
            if 0 <= start < len(symbols) - 1:
                digram = (symbols[start], symbols[start + 1])
                if self.digrams.get(digram) == (rule_index, start):
                    del self.digrams[digram]

    def append_symbol(self, symbol: int) -> None:
        """Append a terminal or rule symbol to the start rule and restore invariants."""
        start_rule = self.rules[0]
        start_rule.append(symbol)
        if symbol >= _FIRST_RULE_ID:
            self.rule_uses[symbol - _FIRST_RULE_ID] += 1
        if len(start_rule) >= 2:
            self._check_digram(0, len(start_rule) - 2)

    def _check_digram(self, rule_index: int, position: int) -> None:
        """Enforce digram uniqueness for the digram starting at ``position``."""
        symbols = self.rules[rule_index]
        if position < 0 or position + 1 >= len(symbols):
            return
        digram = (symbols[position], symbols[position + 1])
        existing = self.digrams.get(digram)
        if existing is None:
            self.digrams[digram] = (rule_index, position)
            return
        other_rule, other_position = existing
        if other_rule == rule_index and abs(other_position - position) < 2:
            # Overlapping occurrence (e.g. "aaa"); leave it alone.
            return
        other_symbols = self.rules[other_rule]
        if (
            other_position + 1 >= len(other_symbols)
            or (other_symbols[other_position], other_symbols[other_position + 1]) != digram
        ):
            # Stale index entry; refresh it.
            self.digrams[digram] = (rule_index, position)
            return
        if other_rule != 0 and len(other_symbols) == 2:
            # The other occurrence is the entire body of an existing rule: reuse it.
            self._replace_digram(rule_index, position, _FIRST_RULE_ID + other_rule)
            return
        # Otherwise create a new rule for the digram and substitute both occurrences.
        new_rule_index = len(self.rules)
        self.rules.append([digram[0], digram[1]])
        self.rule_uses.append(0)
        if digram[0] >= _FIRST_RULE_ID:
            self.rule_uses[digram[0] - _FIRST_RULE_ID] += 1
        if digram[1] >= _FIRST_RULE_ID:
            self.rule_uses[digram[1] - _FIRST_RULE_ID] += 1
        self.digrams[digram] = (new_rule_index, 0)
        new_symbol = _FIRST_RULE_ID + new_rule_index
        # Replace the later occurrence first so the earlier position stays valid.
        first, second = sorted([(rule_index, position), (other_rule, other_position)], reverse=True)
        self._replace_digram(first[0], first[1], new_symbol)
        self._replace_digram(second[0], second[1], new_symbol)

    def _replace_digram(self, rule_index: int, position: int, new_symbol: int) -> None:
        """Replace the two symbols at ``position`` with ``new_symbol`` and re-check digrams."""
        symbols = self.rules[rule_index]
        if position + 1 >= len(symbols):
            return
        self._unlink_digrams_at(rule_index, position)
        self._unlink_digrams_at(rule_index, position + 1)
        old_left, old_right = symbols[position], symbols[position + 1]
        for old in (old_left, old_right):
            if old >= _FIRST_RULE_ID:
                self.rule_uses[old - _FIRST_RULE_ID] -= 1
        symbols[position : position + 2] = [new_symbol]
        self.rule_uses[new_symbol - _FIRST_RULE_ID] += 1
        self._check_digram(rule_index, position - 1)
        self._check_digram(rule_index, position)
        self._enforce_utility(old_left)
        self._enforce_utility(old_right)

    def _enforce_utility(self, symbol: int) -> None:
        """Inline a rule that has dropped to a single reference."""
        if symbol < _FIRST_RULE_ID:
            return
        rule_index = symbol - _FIRST_RULE_ID
        if rule_index == 0 or self.rule_uses[rule_index] != 1 or not self.rules[rule_index]:
            return
        body = self.rules[rule_index]
        for host_index, host in enumerate(self.rules):
            if host_index == rule_index:
                continue
            try:
                position = host.index(symbol)
            except ValueError:
                continue
            self._unlink_digrams_at(host_index, position)
            self._unlink_digrams_at(host_index, position + 1)
            host[position : position + 1] = body
            self.rule_uses[rule_index] = 0
            self.rules[rule_index] = []
            self._check_digram(host_index, position - 1)
            self._check_digram(host_index, position + len(body) - 1)
            return


def infer_grammar(data: bytes) -> tuple[list[list[int]], list[int]]:
    """Run Sequitur over ``data``; returns ``(rule_bodies, start_rule)``.

    Rule ids are compacted so callers see a dense id space: the returned
    ``start_rule`` and rule bodies reference rules as ``256 + dense_index``.
    """
    grammar = _Grammar()
    for byte in data:
        grammar.append_symbol(byte)
    # Compact away rules that were inlined and renumber the survivors densely.
    alive = [index for index in range(1, len(grammar.rules)) if grammar.rules[index]]
    dense_ids = {index: position for position, index in enumerate(alive)}

    def remap(symbols: list[int]) -> list[int]:
        remapped = []
        for symbol in symbols:
            if symbol >= _FIRST_RULE_ID:
                remapped.append(_FIRST_RULE_ID + dense_ids[symbol - _FIRST_RULE_ID])
            else:
                remapped.append(symbol)
        return remapped

    rule_bodies = [remap(grammar.rules[index]) for index in alive]
    return rule_bodies, remap(grammar.rules[0])


def expand(rule_bodies: list[list[int]], start_rule: list[int]) -> bytes:
    """Expand a compacted Sequitur grammar back into bytes."""
    cache: dict[int, bytes] = {}

    def expand_symbol(symbol: int) -> bytes:
        if symbol < _FIRST_RULE_ID:
            return bytes([symbol])
        index = symbol - _FIRST_RULE_ID
        if index >= len(rule_bodies):
            raise DecodingError(f"Sequitur payload references unknown rule {symbol}")
        if index not in cache:
            cache[index] = b"".join(expand_symbol(child) for child in rule_bodies[index])
        return cache[index]

    return b"".join(expand_symbol(symbol) for symbol in start_rule)


class SequiturCodec(Codec):
    """Grammar-based block codec built on incremental Sequitur inference."""

    name = "Sequitur"

    def __init__(self, entropy_stage: bool = True) -> None:
        self.entropy_stage = entropy_stage

    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` into a serialised Sequitur grammar."""
        rule_bodies, start_rule = infer_grammar(data)
        body = bytearray()
        body += encode_uvarint(len(rule_bodies))
        for rule in rule_bodies:
            body += encode_uvarint(len(rule))
            for symbol in rule:
                body += encode_uvarint(symbol)
        body += encode_uvarint(len(start_rule))
        for symbol in start_rule:
            body += encode_uvarint(symbol)
        if self.entropy_stage:
            return b"\x01" + HuffmanEncoder().encode(bytes(body))
        return b"\x00" + bytes(body)

    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""
        if not data:
            raise DecodingError("empty Sequitur payload")
        marker, body = data[0], data[1:]
        if marker == 1:
            body = HuffmanDecoder().decode(body)
        elif marker != 0:
            raise DecodingError(f"unknown Sequitur framing marker {marker}")
        rule_count, offset = decode_uvarint(body, 0)
        rule_bodies: list[list[int]] = []
        for _ in range(rule_count):
            length, offset = decode_uvarint(body, offset)
            rule: list[int] = []
            for _ in range(length):
                symbol, offset = decode_uvarint(body, offset)
                rule.append(symbol)
            rule_bodies.append(rule)
        start_length, offset = decode_uvarint(body, offset)
        start_rule: list[int] = []
        for _ in range(start_length):
            symbol, offset = decode_uvarint(body, offset)
            start_rule.append(symbol)
        return expand(rule_bodies, start_rule)


register_codec("sequitur", SequiturCodec)
