"""Exception hierarchy for the PBC reproduction library.

Every error raised by the library derives from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause while still distinguishing
the individual failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """A field value cannot be encoded by the selected field encoder."""


class DecodingError(ReproError):
    """A compressed payload is malformed or truncated."""


class PatternError(ReproError):
    """A pattern definition is invalid (e.g. empty, or mismatched encoder list)."""


class MatchError(ReproError):
    """A record could not be matched against a pattern it was expected to match."""


class ClusteringError(ReproError):
    """The clustering stage received invalid input (e.g. empty sample set)."""


class DictionaryError(ReproError):
    """A pattern dictionary is inconsistent (duplicate ids, unknown pattern id)."""


class CompressorError(ReproError):
    """A compressor was used before training or with incompatible options."""


class DatasetError(ReproError):
    """A dataset generator received invalid parameters."""


class StoreError(ReproError):
    """A storage substrate (block store / TierBase) operation failed."""


class StreamError(ReproError):
    """Base class for errors raised by the :mod:`repro.stream` subsystem."""


class StreamFormatError(StreamError):
    """A stream container file is malformed, truncated, or not a stream file."""


class FrameCorruptionError(StreamFormatError):
    """A frame (or the footer) failed its CRC32 integrity check."""


class ServiceError(ReproError):
    """A :mod:`repro.service` operation failed (bad configuration, closed service)."""


class CodecError(ReproError):
    """A :mod:`repro.codecs` registry or codec operation failed."""


class UnknownCodecError(CodecError, StreamFormatError):
    """A codec id or name is not present in the :mod:`repro.codecs` registry.

    Also a :class:`StreamFormatError`: an unknown codec id read from a stream
    frame header means the container cannot be decoded, and pre-registry
    callers catch the stream hierarchy.
    """


class MissingModelError(CompressorError, StreamFormatError):
    """A trained model payload is required but absent (empty/untrained).

    Dual-typed on purpose: an untrained value compressor historically raised
    :class:`CompressorError`, while a stream frame missing its dictionary
    payload historically raised :class:`StreamFormatError` — both contracts
    are preserved.
    """


class ObsError(ReproError):
    """A :mod:`repro.obs` metrics operation failed (bad metric name, kind or
    label mismatch on re-registration, negative counter increment)."""


class NetError(ReproError):
    """Base class for errors raised by the :mod:`repro.net` wire layer."""


class LimitExceededError(NetError):
    """A request exceeded a server-enforced size limit.

    Raised by the server when a SET/MSET value is larger than
    ``max_value_bytes`` or an MGET/MSET batch has more than
    ``max_batch_items`` entries; relayed to clients as a typed ERR frame,
    so ``except LimitExceededError`` works across the wire.  The offending
    request is rejected but the connection stays open.
    """


class RateLimitedError(NetError):
    """A connection exceeded its per-connection token-bucket rate limit.

    Relayed to clients as a typed ERR frame (``except RateLimitedError``
    works across the wire).  Only the over-budget request is rejected; the
    connection stays open and recovers as the bucket refills.
    """


class ProtocolError(NetError):
    """A wire frame is malformed: bad magic, unknown opcode, an oversized or
    inconsistent declared length, or a stream that ends mid-frame."""


class RemoteError(NetError):
    """A server-side error relayed over the wire to a :mod:`repro.net` client.

    ``kind`` names the exception class raised inside the server (for example
    ``"ModelEpochError"`` or ``"ServiceError"``); ``remote_message`` carries
    its message.  For kinds that name a known :mod:`repro.exceptions` class,
    the client raises a subclass that *also* inherits the original type, so
    ``except ModelEpochError`` keeps working across the wire.
    """

    def __init__(self, kind: str, remote_message: str) -> None:
        super().__init__(f"{kind}: {remote_message}")
        self.kind = kind
        self.remote_message = remote_message


class OplogError(ReproError):
    """A :mod:`repro.oplog` operation failed (closed sink/subscription, bad
    sequencer or ring configuration)."""


class SubscriberLagError(OplogError):
    """An operation-log subscriber was overrun: the bounded ring evicted
    records it had not read yet.

    The subscriber's cursor is resynchronised to the oldest retained record,
    but the stream it sees now has a gap — a follower must re-seed from a
    snapshot rather than keep applying.  ``missed`` counts the evicted
    records.
    """

    def __init__(self, message: str, missed: int = 0) -> None:
        super().__init__(message)
        self.missed = missed


class ModelEpochError(CodecError):
    """A payload references a trained-model epoch that is no longer retained.

    Raised on decompression when the epoch stamped into a versioned payload
    header has been pruned from the :class:`repro.codecs.ModelStore` — e.g. a
    cached payload outliving every live reference to its training epoch.
    """
