"""TierBase: an in-memory, Redis-like key-value store with value compression.

The paper's case study (Section 7.5, Table 8) integrates PBC_F into TierBase,
Ant Group's production distributed in-memory database.  The production system
cannot be reproduced, so this module provides a single-node simulator with the
same compression integration points (docs/ARCHITECTURE.md, substitution 4):

* offline, per-workload training of the value compressor (Zstd dictionary or
  PBC_F patterns) on a sample of values;
* SET compresses the value, GET decompresses it;
* a monitoring component tracks the achieved compression ratio and — for PBC —
  the unmatched-record rate, and flags the workload for re-training when either
  deteriorates past its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.compressor import PBCCompressor
from repro.exceptions import StoreError
from repro.tierbase.compression import NoopValueCompressor, PBCValueCompressor, ValueCompressor


@dataclass
class CompressionMonitor:
    """Tracks the live compression ratio and the unmatched-pattern rate.

    ``ratio_threshold`` is the ratio above which the workload is considered to
    have drifted (Zstd path); ``unmatched_threshold`` is the outlier-rate limit
    of the PBC path (Section 7.5's counter of records that match no pattern).
    """

    ratio_threshold: float = 0.8
    unmatched_threshold: float = 0.2
    original_bytes: int = 0
    stored_bytes: int = 0
    values_seen: int = 0
    retraining_events: int = 0

    @property
    def ratio(self) -> float:
        """Observed compression ratio over all SET operations."""
        if self.original_bytes == 0:
            return 1.0
        return self.stored_bytes / self.original_bytes

    def observe(self, original_size: int, stored_size: int) -> None:
        """Record one SET operation."""
        self.original_bytes += original_size
        self.stored_bytes += stored_size
        self.values_seen += 1

    def needs_retraining(self, pbc: PBCCompressor | None = None) -> bool:
        """Whether the monitored signals crossed their thresholds."""
        if self.values_seen < 64:
            return False
        if self.ratio > self.ratio_threshold:
            return True
        if pbc is not None and pbc.outlier_rate > self.unmatched_threshold:
            return True
        return False

    def reset(self) -> None:
        """Clear the counters after a re-training event."""
        self.original_bytes = 0
        self.stored_bytes = 0
        self.values_seen = 0
        self.retraining_events += 1


@dataclass
class StoreStats:
    """Aggregate statistics of a TierBase instance."""

    keys: int
    memory_bytes: int
    original_value_bytes: int
    stored_value_bytes: int
    sets: int
    gets: int
    hits: int
    misses: int

    @property
    def value_ratio(self) -> float:
        """Compression ratio over the currently stored values."""
        if self.original_value_bytes == 0:
            return 1.0
        return self.stored_value_bytes / self.original_value_bytes


class TierBase:
    """Single-node TierBase simulator with pluggable value compression."""

    def __init__(
        self,
        compressor: ValueCompressor | None = None,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
    ) -> None:
        self.compressor = compressor if compressor is not None else NoopValueCompressor()
        self.monitor = CompressionMonitor(
            ratio_threshold=ratio_threshold, unmatched_threshold=unmatched_threshold
        )
        self._data: dict[str, bytes] = {}
        self._original_sizes: dict[str, int] = {}
        self._sets = 0
        self._gets = 0
        self._hits = 0
        self._misses = 0

    # --------------------------------------------------------------- training

    def train(self, sample_values: Sequence[str]) -> None:
        """Offline training of the value compressor on a workload sample."""
        if not sample_values:
            raise StoreError("cannot train the value compressor on an empty sample")
        self.compressor.train(sample_values)

    def retrain(self, sample_values: Sequence[str]) -> None:
        """Re-train the compressor and recompress every stored value."""
        # Decompress everything with the *current* dictionary before training
        # replaces it — the stored payloads are undecodable afterwards.
        existing = {key: self.get(key) for key in list(self._data)}
        self.train(sample_values)
        self.monitor.reset()
        self._data.clear()
        self._original_sizes.clear()
        for key, value in existing.items():
            self.set(key, value)

    # ------------------------------------------------------------- operations

    def set(self, key: str, value: str) -> None:
        """Store ``value`` under ``key`` (compressed)."""
        payload = self.compressor.compress(value)
        original_size = len(value.encode("utf-8"))
        self._data[key] = payload
        self._original_sizes[key] = original_size
        self._sets += 1
        self.monitor.observe(original_size, len(payload))

    def get(self, key: str) -> str:
        """Fetch and decompress the value stored under ``key``."""
        payload = self.get_compressed(key)
        if payload is None:
            raise KeyError(key)
        return self.compressor.decompress(payload)

    def get_compressed(self, key: str) -> bytes | None:
        """Fetch the stored (compressed) payload without decompressing it.

        This is the read path of the service layer's compressed LRU cache: the
        payload is cached as-is and only decompressed on a cache hit.  Counts
        as a GET in the store statistics.
        """
        self._gets += 1
        payload = self._data.get(key)
        if payload is None:
            self._misses += 1
            return None
        self._hits += 1
        return payload

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""
        existed = key in self._data
        self._data.pop(key, None)
        self._original_sizes.pop(key, None)
        return existed

    def exists(self, key: str) -> bool:
        """Whether ``key`` is present."""
        return key in self._data

    def keys(self) -> Iterator[str]:
        """Iterate over all stored keys."""
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # --------------------------------------------------------------- metrics

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint: keys plus compressed values."""
        return sum(len(key.encode("utf-8")) + len(value) for key, value in self._data.items())

    def needs_retraining(self) -> bool:
        """Whether the compression monitor recommends a re-training pass."""
        pbc = self.compressor.pbc if isinstance(self.compressor, PBCValueCompressor) else None
        return self.monitor.needs_retraining(pbc)

    def stats(self) -> StoreStats:
        """Aggregate statistics snapshot."""
        return StoreStats(
            keys=len(self._data),
            memory_bytes=self.memory_bytes,
            original_value_bytes=sum(self._original_sizes.values()),
            stored_value_bytes=sum(len(value) for value in self._data.values()),
            sets=self._sets,
            gets=self._gets,
            hits=self._hits,
            misses=self._misses,
        )
