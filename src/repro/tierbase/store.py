"""TierBase: an in-memory, Redis-like key-value store with value compression.

The paper's case study (Section 7.5, Table 8) integrates PBC_F into TierBase,
Ant Group's production distributed in-memory database.  The production system
cannot be reproduced, so this module provides a single-node simulator with the
same compression integration points (docs/ARCHITECTURE.md, substitution 4):

* offline, per-workload training of the value compressor (Zstd dictionary or
  PBC_F patterns) on a sample of values;
* SET compresses the value, GET decompresses it;
* a :class:`~repro.codecs.ModelLifecycle` (reservoir + drift monitor) flags
  the workload for re-training when the compression ratio or the PBC
  unmatched-record rate deteriorates past its threshold.

Retraining is **epoch-based** (:mod:`repro.codecs.model`): it installs a new
trained model and leaves every stored payload untouched — each payload header
names the epoch that wrote it, and the store ref-counts live payloads per
epoch so superseded models are pruned only once nothing references them.
The pre-registry stop-the-world path (decompress everything, retrain,
recompress) survives as ``retrain(..., rewrite=True)`` for the
``benchmarks/bench_retrain.py`` before/after comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.codecs.lifecycle import DriftMonitor, ModelLifecycle
from repro.exceptions import StoreError
from repro.oplog.log import OperationLog
from repro.oplog.record import OP_DELETE, OP_PUT
from repro.tierbase import snapshot as tbs
from repro.tierbase.compression import NoopValueCompressor, ValueCompressor

#: Back-compat alias: the monitor moved to :mod:`repro.codecs.lifecycle`.
#: Contract change with the move: ``needs_retraining`` takes the outlier
#: *rate* (a float) rather than the PBC compressor object it used to inspect.
CompressionMonitor = DriftMonitor


@dataclass
class StoreStats:
    """Aggregate statistics of a TierBase instance."""

    keys: int
    memory_bytes: int
    original_value_bytes: int
    stored_value_bytes: int
    sets: int
    gets: int
    hits: int
    misses: int

    @property
    def value_ratio(self) -> float:
        """Compression ratio over the currently stored values."""
        if self.original_value_bytes == 0:
            return 1.0
        return self.stored_value_bytes / self.original_value_bytes


class TierBase:
    """Single-node TierBase simulator with pluggable value compression."""

    def __init__(
        self,
        compressor: ValueCompressor | None = None,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
        train_size: int = 256,
    ) -> None:
        self.compressor = compressor if compressor is not None else NoopValueCompressor()
        self.lifecycle = ModelLifecycle(
            reservoir_size=train_size,
            ratio_threshold=ratio_threshold,
            unmatched_threshold=unmatched_threshold,
        )
        self.monitor = self.lifecycle.monitor
        self._data: dict[str, bytes] = {}
        self._original_sizes: dict[str, int] = {}
        self._epochs: dict[str, int] = {}
        #: the store's mutation spine: every SET/DELETE is sequenced through
        #: it as an LSN-stamped record whose value is the *epoch-stamped
        #: compressed payload* — which is what lets a follower converge
        #: byte-exactly without ever holding a trained model.
        self.oplog = OperationLog()
        self._sets = 0
        self._gets = 0
        self._hits = 0
        self._misses = 0

    # --------------------------------------------------------------- training

    def train(self, sample_values: Sequence[str]) -> None:
        """Offline training of the value compressor on a workload sample."""
        if not sample_values:
            raise StoreError("cannot train the value compressor on an empty sample")
        self.compressor.train(sample_values)
        self.lifecycle.mark_trained()

    def retrain(self, sample_values: Sequence[str] | None = None, rewrite: bool = False) -> None:
        """Re-train the compressor on ``sample_values`` (default: the reservoir
        of recent values).

        The epoch model makes this cheap: a new model is installed for future
        SETs while stored payloads keep decoding against the epoch stamped in
        their headers — nothing is rewritten and reads are never blocked.
        ``rewrite=True`` restores the pre-epoch stop-the-world behaviour
        (decompress everything, retrain, recompress) for benchmarking.
        """
        if rewrite:
            # Decompress everything with the models that wrote it *before*
            # re-compressing under the new epoch.
            existing = {key: self.get(key) for key in list(self._data)}
            self._retrain_model(sample_values)
            self._clear_payloads()
            for key, value in existing.items():
                self.set(key, value)
            return
        self._retrain_model(sample_values)

    def _retrain_model(self, sample_values: Sequence[str] | None) -> None:
        if sample_values is not None and not sample_values:
            raise StoreError("cannot train the value compressor on an empty sample")
        if not self.lifecycle.retrain(self.compressor.train, sample_values):
            raise StoreError("cannot retrain: no sample provided and the reservoir is empty")

    def _clear_payloads(self) -> None:
        for epoch in self._epochs.values():
            self.compressor.release_epoch(epoch)
        self._data.clear()
        self._original_sizes.clear()
        self._epochs.clear()

    # ------------------------------------------------------------- operations

    def set(self, key: str, value: str) -> int:
        """Store ``value`` under ``key`` (compressed); returns the assigned LSN.

        The mutation is sequenced through the operation log *as the
        compressed, epoch-stamped payload*: a subscriber replays exactly the
        bytes this store keeps, so replication needs no model shipping.
        """
        payload = self.compressor.compress(value)
        original_size = len(value.encode("utf-8"))
        epoch = self.compressor.payload_epoch(payload)
        record = self.oplog.append(OP_PUT, key, payload, epoch)
        previous = self._epochs.get(key)
        self.compressor.acquire_epoch(epoch)
        if previous is not None:
            self.compressor.release_epoch(previous)
        self._epochs[key] = epoch
        self._data[key] = payload
        self._original_sizes[key] = original_size
        self._sets += 1
        self.lifecycle.observe(value, original_size, len(payload))
        return record.lsn

    def get(self, key: str) -> str:
        """Fetch and decompress the value stored under ``key``."""
        payload = self.get_compressed(key)
        if payload is None:
            raise KeyError(key)
        return self.compressor.decompress(payload)

    def get_compressed(self, key: str) -> bytes | None:
        """Fetch the stored (compressed) payload without decompressing it.

        This is the read path of the service layer's compressed LRU cache: the
        payload is cached as-is and only decompressed on a cache hit.  Counts
        as a GET in the store statistics.
        """
        self._gets += 1
        payload = self._data.get(key)
        if payload is None:
            self._misses += 1
            return None
        self._hits += 1
        return payload

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed.

        Sequenced through the operation log unconditionally (the attempt is
        the mutation command; deleting an absent key replays as a no-op), so
        a follower sees every delete the primary saw.  The assigned LSN is
        observable as :attr:`last_applied_lsn`.
        """
        self.oplog.append(OP_DELETE, key)
        existed = key in self._data
        self._data.pop(key, None)
        self._original_sizes.pop(key, None)
        epoch = self._epochs.pop(key, None)
        if epoch is not None:
            self.compressor.release_epoch(epoch)
        return existed

    def exists(self, key: str) -> bool:
        """Whether ``key`` is present."""
        return key in self._data

    def keys(self) -> Iterator[str]:
        """Iterate over all stored keys in sorted order.

        Sorted iteration is a contract, not an accident: the service layer's
        range scans merge per-shard streams in key order, so every backend
        must produce ordered keys.  (Before range scans existed this leaked
        dict insertion order.)
        """
        return iter(sorted(self._data))

    def scan(
        self, start: str | None = None, end: str | None = None, limit: int | None = None
    ) -> Iterator[tuple[str, str]]:
        """Entries with ``start <= key < end`` in key order, decompressed on yield.

        ``limit`` bounds the number of results; values are decompressed one at
        a time as the iterator advances, so an abandoned scan never pays for
        entries it did not reach.  Scanned entries count as GET hits.
        """
        if limit is not None and limit <= 0:
            return
        yielded = 0
        for key in sorted(self._data):
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                return
            self._gets += 1
            self._hits += 1
            yield key, self.compressor.decompress(self._data[key])
            yielded += 1
            if limit is not None and yielded >= limit:
                return

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path, sync: bool = True) -> None:
        """Atomically publish a ``TBS2`` snapshot of this store at ``path``.

        The snapshot carries the still-compressed payloads, the compressor's
        persisted model store, and the store's last-applied LSN
        (docs/FORMATS.md §8), so :meth:`load` decodes every payload with the
        exact epoch that wrote it and resumes the operation-log sequence
        where it left off.  A crash mid-save leaves the previous complete
        snapshot in place.
        """
        tbs.write_snapshot(self, path, sync=sync)

    @classmethod
    def load(
        cls,
        path: str | Path,
        compressor: ValueCompressor | None = None,
        ratio_threshold: float = 0.8,
        unmatched_threshold: float = 0.2,
        train_size: int = 256,
    ) -> "TierBase":
        """Rebuild a store from a ``TBS2`` (or legacy ``TBS1``) snapshot.

        ``compressor`` must be a fresh instance of the same compressor kind
        that wrote the snapshot — its trained model epochs are restored from
        the snapshot itself.  Mismatches fail typed: a versioned snapshot
        opened with an un-versioned compressor (or vice versa) is a
        :class:`StoreError`, and a different codec is the
        :class:`~repro.exceptions.CodecError` from ``load_models``.
        """
        content = tbs.read_snapshot(path)
        store = cls(
            compressor=compressor,
            ratio_threshold=ratio_threshold,
            unmatched_threshold=unmatched_threshold,
            train_size=train_size,
        )
        versioned = store.compressor.dump_models() is not None
        if content.models is not None and not versioned:
            raise StoreError(
                f"snapshot {path} was written by the versioned compressor "
                f"{content.compressor_name!r}; reopen it with that compressor, "
                f"not {store.compressor.name!r}"
            )
        if content.models is None and versioned:
            raise StoreError(
                f"snapshot {path} was written by the un-versioned compressor "
                f"{content.compressor_name!r}; reopen it with that compressor, "
                f"not {store.compressor.name!r}"
            )
        if content.models is not None:
            store.compressor.load_models(content.models)
        for key, original_size, payload in content.entries:
            epoch = store.compressor.payload_epoch(payload)
            store.compressor.acquire_epoch(epoch)
            store._epochs[key] = epoch
            store._data[key] = payload
            store._original_sizes[key] = original_size
        # Snapshot entries are *applied*, not re-logged — they already carry
        # the LSNs the writer assigned; resume the sequence past the stamp
        # (0 for legacy TBS1 snapshots, which predate LSNs).
        store.oplog.advance_to(content.last_applied_lsn)
        return store

    # ---------------------------------------------------------- operation log

    @property
    def last_applied_lsn(self) -> int:
        """The newest LSN this store has applied (0 before the first mutation)."""
        return self.oplog.last_lsn

    # --------------------------------------------------------------- metrics

    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint: keys plus compressed values."""
        return sum(len(key.encode("utf-8")) + len(value) for key, value in self._data.items())

    def needs_retraining(self) -> bool:
        """Whether the compression monitor recommends a re-training pass."""
        return self.lifecycle.needs_retrain(self.compressor.outlier_rate)

    def stats(self) -> StoreStats:
        """Aggregate statistics snapshot."""
        return StoreStats(
            keys=len(self._data),
            memory_bytes=self.memory_bytes,
            original_value_bytes=sum(self._original_sizes.values()),
            stored_value_bytes=sum(len(value) for value in self._data.values()),
            sets=self._sets,
            gets=self._gets,
            hits=self._hits,
            misses=self._misses,
        )
