"""TierBase: in-memory key-value store simulator with pluggable value compression.

This is the substrate for the paper's production case study (Section 7.5,
Table 8): a Redis-like store whose values are compressed per workload with an
offline-trained compressor, plus a monitoring component that triggers
re-training when compression deteriorates.
"""

from repro.tierbase.compression import (
    NoopValueCompressor,
    PBCValueCompressor,
    ValueCompressor,
    VersionedValueCompressor,
    ZstdDictValueCompressor,
)
from repro.tierbase.snapshot import (
    LEGACY_SNAPSHOT_MAGIC,
    SNAPSHOT_MAGIC,
    SnapshotContent,
    read_snapshot,
    write_snapshot,
)
from repro.tierbase.store import CompressionMonitor, StoreStats, TierBase
from repro.tierbase.workload import WorkloadResult, WorkloadSpec, run_workload

__all__ = [
    "CompressionMonitor",
    "LEGACY_SNAPSHOT_MAGIC",
    "NoopValueCompressor",
    "SNAPSHOT_MAGIC",
    "SnapshotContent",
    "read_snapshot",
    "write_snapshot",
    "PBCValueCompressor",
    "StoreStats",
    "TierBase",
    "ValueCompressor",
    "VersionedValueCompressor",
    "WorkloadResult",
    "WorkloadSpec",
    "ZstdDictValueCompressor",
    "run_workload",
]
