"""Workload driver for the TierBase case study (Table 8).

The paper evaluates two production workloads with three compression options
(Uncompressed, Zstd with a trained dictionary, PBC_F) and reports relative
memory usage and single-instance SET / GET throughput.  This module provides
the measurement harness: it loads a workload's values into a
:class:`~repro.tierbase.store.TierBase` instance, then times SET and GET
operations separately.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Sequence

from repro.tierbase.store import TierBase


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table 8 workload: a named stream of values to store."""

    name: str
    dataset: str
    value_count: int
    train_count: int = 256


@dataclass
class WorkloadResult:
    """Measured outcome of one (workload, compressor) cell of Table 8."""

    workload: str
    compressor: str
    memory_bytes: int
    uncompressed_bytes: int
    set_operations: int
    set_seconds: float
    get_operations: int
    get_seconds: float

    @property
    def memory_usage_percent(self) -> float:
        """Memory relative to storing the values uncompressed (Table 8's metric)."""
        if self.uncompressed_bytes == 0:
            return 100.0
        return 100.0 * self.memory_bytes / self.uncompressed_bytes

    @property
    def set_qps(self) -> float:
        """Average SET throughput (operations per second)."""
        if self.set_seconds <= 0:
            return 0.0
        return self.set_operations / self.set_seconds

    @property
    def get_qps(self) -> float:
        """Average GET throughput (operations per second)."""
        if self.get_seconds <= 0:
            return 0.0
        return self.get_operations / self.get_seconds


def run_workload(
    store: TierBase,
    values: Sequence[str],
    workload_name: str = "workload",
    get_operations: int | None = None,
    train_sample: Sequence[str] | None = None,
    seed: int = 2023,
) -> WorkloadResult:
    """Load ``values`` into ``store`` and measure SET and GET throughput.

    ``train_sample`` defaults to a prefix of the values (the offline training
    sample of Section 7.5).  GETs are issued for uniformly random existing keys.
    """
    if train_sample is None:
        train_sample = values[: min(len(values), 256)]
    store.train(train_sample)

    keys = [f"{workload_name}:{index}" for index in range(len(values))]
    uncompressed_bytes = sum(
        len(key.encode("utf-8")) + len(value.encode("utf-8")) for key, value in zip(keys, values)
    )

    started = time.perf_counter()
    for key, value in zip(keys, values):
        store.set(key, value)
    set_seconds = time.perf_counter() - started

    rng = random.Random(seed)
    if get_operations is None:
        get_operations = len(values)
    lookup_keys = [keys[rng.randrange(len(keys))] for _ in range(get_operations)]
    started = time.perf_counter()
    for key in lookup_keys:
        store.get(key)
    get_seconds = time.perf_counter() - started

    return WorkloadResult(
        workload=workload_name,
        compressor=store.compressor.name,
        memory_bytes=store.memory_bytes,
        uncompressed_bytes=uncompressed_bytes,
        set_operations=len(values),
        set_seconds=set_seconds,
        get_operations=get_operations,
        get_seconds=get_seconds,
    )
