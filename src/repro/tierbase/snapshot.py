"""``TBS2`` snapshot format: persistence for the in-memory TierBase store.

TierBase is Redis-shaped, and this is its RDB analogue: a point-in-time dump
of every stored (still-compressed) payload plus the compressor's persisted
:class:`~repro.codecs.ModelStore`, so a reopened store decodes every payload
with the exact model epoch that wrote it.  ``TBS2`` additionally stamps the
store's **last-applied LSN**, so a reloaded store resumes its operation-log
sequence instead of re-issuing sequence numbers.  Byte layout
(docs/FORMATS.md §8)::

    snapshot := magic "TBS2" (4)
                flags u8                      (bit 0: model store present)
                uvarint(len(name)) name       (compressor name, mismatch check)
                [flag] uvarint(len(models)) models
                                              (ValueCompressor.dump_models():
                                               codec magic + ModelStore bytes)
                uvarint(last_applied_lsn)     (operation-log watermark)
                uvarint(key_count)
                per key: uvarint(len(key)) key
                         uvarint(original_size)
                         uvarint(len(payload)) payload   (epoch-stamped)
                crc32 u32-be                  (over everything above)

Legacy ``TBS1`` files (identical except no ``last_applied_lsn`` field) stay
readable: they parse with a watermark of 0, exactly as a pre-LSN writer left
them.  New snapshots are always written as ``TBS2``.

Snapshots are published with the atomic tmp-then-rename pattern
(:func:`repro.ioutil.atomic_write_bytes`), so a crash mid-save leaves the
previous complete snapshot in place; a torn or bit-flipped file fails the
CRC with a typed :class:`~repro.exceptions.StoreError`, never a partial load.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.exceptions import DecodingError, StoreError
from repro.ioutil import atomic_write_bytes

#: Magic prefix of every snapshot this module writes (LSN-stamped format).
SNAPSHOT_MAGIC = b"TBS2"

#: Magic prefix of the legacy (pre-LSN) format, still accepted on read.
LEGACY_SNAPSHOT_MAGIC = b"TBS1"

#: Flag bit: the snapshot carries a persisted model store.
_FLAG_MODELS = 0x01


@dataclass(frozen=True)
class SnapshotContent:
    """Parsed contents of a snapshot file, before being applied to a store."""

    #: name of the compressor that wrote the snapshot (e.g. ``"PBC_F"``).
    compressor_name: str
    #: persisted model store (``ValueCompressor.dump_models`` output), or
    #: ``None`` when the writer was an un-versioned compressor.
    models: bytes | None
    #: ``(key, original_size, compressed_payload)`` per stored key.
    entries: tuple[tuple[str, int, bytes], ...]
    #: operation-log watermark at save time (0 for legacy ``TBS1`` files).
    last_applied_lsn: int = 0


def dump_snapshot(store) -> bytes:
    """Serialise a :class:`~repro.tierbase.store.TierBase` into ``TBS2`` bytes."""
    models = store.compressor.dump_models()
    name_bytes = store.compressor.name.encode("utf-8")
    out = bytearray()
    out += SNAPSHOT_MAGIC
    out.append(_FLAG_MODELS if models is not None else 0)
    out += encode_uvarint(len(name_bytes))
    out += name_bytes
    if models is not None:
        out += encode_uvarint(len(models))
        out += models
    out += encode_uvarint(getattr(store, "last_applied_lsn", 0))
    out += encode_uvarint(len(store._data))
    for key, payload in store._data.items():
        key_bytes = key.encode("utf-8")
        out += encode_uvarint(len(key_bytes))
        out += key_bytes
        out += encode_uvarint(store._original_sizes.get(key, len(payload)))
        out += encode_uvarint(len(payload))
        out += payload
    out += zlib.crc32(out).to_bytes(4, "big")
    return bytes(out)


def write_snapshot(store, path: str | Path, sync: bool = True) -> None:
    """Atomically publish ``store`` as a ``TBS2`` snapshot at ``path``."""
    atomic_write_bytes(path, dump_snapshot(store), sync=sync)


def read_snapshot(path: str | Path) -> SnapshotContent:
    """Parse a ``TBS2``/``TBS1`` file; any damage is a typed :class:`StoreError`."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(SNAPSHOT_MAGIC) + 4 + 1:
        raise StoreError(f"{path} is too small to be a TierBase snapshot")
    magic = data[: len(SNAPSHOT_MAGIC)]
    if magic not in (SNAPSHOT_MAGIC, LEGACY_SNAPSHOT_MAGIC):
        raise StoreError(f"{path} is not a TierBase snapshot (bad magic)")
    body, footer = data[:-4], data[-4:]
    if zlib.crc32(body) != int.from_bytes(footer, "big"):
        raise StoreError(f"{path} failed its CRC32 check (torn or corrupted snapshot)")
    try:
        return _parse_body(body, path, legacy=magic == LEGACY_SNAPSHOT_MAGIC)
    except (DecodingError, UnicodeDecodeError, IndexError) as error:
        raise StoreError(f"{path} has a malformed snapshot body") from error


def _parse_body(body: bytes, path: Path, legacy: bool) -> SnapshotContent:
    offset = len(SNAPSHOT_MAGIC)
    flags = body[offset]
    offset += 1
    name_length, offset = decode_uvarint(body, offset)
    compressor_name = body[offset : offset + name_length].decode("utf-8")
    offset += name_length
    models: bytes | None = None
    if flags & _FLAG_MODELS:
        models_length, offset = decode_uvarint(body, offset)
        models = body[offset : offset + models_length]
        if len(models) != models_length:
            raise StoreError(f"{path} has a truncated model store section")
        offset += models_length
    last_applied_lsn = 0
    if not legacy:
        last_applied_lsn, offset = decode_uvarint(body, offset)
    key_count, offset = decode_uvarint(body, offset)
    entries: list[tuple[str, int, bytes]] = []
    for _ in range(key_count):
        key_length, offset = decode_uvarint(body, offset)
        key = body[offset : offset + key_length].decode("utf-8")
        offset += key_length
        original_size, offset = decode_uvarint(body, offset)
        payload_length, offset = decode_uvarint(body, offset)
        payload = body[offset : offset + payload_length]
        if len(payload) != payload_length:
            raise StoreError(f"{path} has a truncated payload for key {key!r}")
        offset += payload_length
        entries.append((key, original_size, payload))
    if offset != len(body):
        raise StoreError(f"{path} has trailing bytes after the last snapshot entry")
    return SnapshotContent(
        compressor_name=compressor_name,
        models=models,
        entries=tuple(entries),
        last_applied_lsn=last_applied_lsn,
    )
