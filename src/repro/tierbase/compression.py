"""Value-compression plugins for the TierBase store simulator.

TierBase (Section 7.5) compresses every stored value with a workload-trained
compressor: originally a Zstd dictionary trained offline per workload, and —
after the paper's integration work — optionally PBC_F patterns trained the same
way.  The store only sees this small plugin interface:

* ``train(sample_values)`` — offline training on a sample of the workload,
* ``compress`` / ``decompress`` — per-value transform applied on SET / GET.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.compressors.zstdlike import ZstdLikeCodec, train_dictionary
from repro.core.compressor import PBCCompressor, PBCFCompressor
from repro.core.extraction import ExtractionConfig


class ValueCompressor(ABC):
    """Per-value compressor used by :class:`repro.tierbase.store.TierBase`."""

    #: name shown in the Table 8 rows.
    name: str = "value-compressor"

    @abstractmethod
    def train(self, sample_values: Sequence[str]) -> None:
        """Offline training on a sample of the workload's values."""

    @abstractmethod
    def compress(self, value: str) -> bytes:
        """Compress one value."""

    @abstractmethod
    def decompress(self, data: bytes) -> str:
        """Invert :meth:`compress`."""


class NoopValueCompressor(ValueCompressor):
    """Stores values uncompressed (the "Uncompressed" Table 8 row)."""

    name = "Uncompressed"

    def train(self, sample_values: Sequence[str]) -> None:
        return None

    def compress(self, value: str) -> bytes:
        return value.encode("utf-8")

    def decompress(self, data: bytes) -> str:
        return data.decode("utf-8")


class ZstdDictValueCompressor(ValueCompressor):
    """Zstd with a workload-trained dictionary (TierBase's original solution)."""

    name = "Zstd"

    def __init__(self, level: int = 3, dictionary_size: int = 4096) -> None:
        self.level = level
        self.dictionary_size = dictionary_size
        self._codec = ZstdLikeCodec(level=level)

    def train(self, sample_values: Sequence[str]) -> None:
        dictionary = train_dictionary(
            (value.encode("utf-8") for value in sample_values), max_size=self.dictionary_size
        )
        self._codec = ZstdLikeCodec(level=self.level, dictionary=dictionary)

    def compress(self, value: str) -> bytes:
        return self._codec.compress(value.encode("utf-8"))

    def decompress(self, data: bytes) -> str:
        return self._codec.decompress(data).decode("utf-8")


class PBCValueCompressor(ValueCompressor):
    """PBC_F with workload-trained patterns (the paper's integration, Table 8)."""

    name = "PBC_F"

    def __init__(self, config: ExtractionConfig | None = None, use_fsst: bool = True) -> None:
        self.config = config if config is not None else ExtractionConfig()
        compressor_class = PBCFCompressor if use_fsst else PBCCompressor
        self._pbc = compressor_class(config=self.config)
        self.name = self._pbc.name  # "PBC_F" with FSST, plain "PBC" without

    @property
    def pbc(self) -> PBCCompressor:
        """The underlying PBC compressor (exposed for monitoring and tests)."""
        return self._pbc

    def train(self, sample_values: Sequence[str]) -> None:
        self._pbc.train(list(sample_values))

    def compress(self, value: str) -> bytes:
        return self._pbc.compress(value)

    def decompress(self, data: bytes) -> str:
        return self._pbc.decompress(data)
