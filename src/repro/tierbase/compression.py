"""Value-compression plugins for the TierBase store simulator.

TierBase (Section 7.5) compresses every stored value with a workload-trained
compressor: originally a Zstd dictionary trained offline per workload, and —
after the paper's integration work — optionally PBC_F patterns trained the same
way.  The store only sees this small plugin interface:

* ``train(sample_values)`` — offline training on a sample of the workload,
* ``compress`` / ``decompress`` — per-value transform applied on SET / GET.

Since the :mod:`repro.codecs` refactor every trained compressor is a thin view
over a :class:`~repro.codecs.VersionedCodec`: training installs a new model
*epoch*, every compressed payload carries a ``codec_magic + uvarint(epoch)``
header (docs/FORMATS.md §6), and decompression resolves the exact model that
wrote the bytes.  Retraining therefore never rewrites stored values — old
epochs stay decodable until no live payload references them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.codecs import ModelStore, VersionedCodec, payload_epoch
from repro.codecs.builtin import PBCCodec, PBCFCodec, ZstdCodec
from repro.codecs.registry import codec_by_name
from repro.core.compressor import PBCCompressor
from repro.core.extraction import ExtractionConfig
from repro.exceptions import CodecError


class ValueCompressor(ABC):
    """Per-value compressor used by :class:`repro.tierbase.store.TierBase`."""

    #: name shown in the Table 8 rows.
    name: str = "value-compressor"

    @abstractmethod
    def train(self, sample_values: Sequence[str]) -> None:
        """Offline training on a sample of the workload's values."""

    @abstractmethod
    def compress(self, value: str) -> bytes:
        """Compress one value."""

    @abstractmethod
    def decompress(self, data: bytes) -> str:
        """Invert :meth:`compress`."""

    # --------------------------------------------------------- epoch surface
    #
    # Plain (un-versioned) compressors live entirely at epoch 0; the
    # versioned subclasses override everything below.

    @property
    def current_epoch(self) -> int:
        """The model epoch new payloads are written at (0 = untrained/plain)."""
        return 0

    @property
    def outlier_rate(self) -> float:
        """Outlier fraction since the current epoch (0.0 for non-pattern codecs)."""
        return 0.0

    def payload_epoch(self, data: bytes) -> int:
        """The epoch stamped into a payload produced by :meth:`compress`."""
        del data
        return 0

    def compress_at(self, value: str, epoch: int) -> bytes:
        """Headerless value body at ``epoch`` (SSTable blocks stamp it once)."""
        del epoch
        return self.compress(value)

    def decompress_at(self, data: bytes, epoch: int) -> str:
        """Invert :meth:`compress_at` for a body written at ``epoch``."""
        del epoch
        return self.decompress(data)

    def acquire_epoch(self, epoch: int) -> None:
        """Record one live payload written at ``epoch`` (retention refcount)."""

    def release_epoch(self, epoch: int) -> None:
        """Drop one live-payload reference (may prune the epoch's model)."""

    def dump_models(self) -> bytes | None:
        """Serialised model store, for stores whose payloads outlive the
        process (on-disk LSM shards); ``None`` for un-versioned compressors."""
        return None

    def load_models(self, data: bytes) -> None:
        """Restore a model store produced by :meth:`dump_models` (no-op here)."""


class NoopValueCompressor(ValueCompressor):
    """Stores values uncompressed (the "Uncompressed" Table 8 row)."""

    name = "Uncompressed"

    def train(self, sample_values: Sequence[str]) -> None:
        return None

    def compress(self, value: str) -> bytes:
        return value.encode("utf-8")

    def decompress(self, data: bytes) -> str:
        return data.decode("utf-8")


class VersionedValueCompressor(ValueCompressor):
    """A :class:`ValueCompressor` over a registry codec with versioned models.

    ``compress`` stamps the current epoch into every payload; ``decompress``
    reads it back and decodes with the exact model that wrote the bytes, so a
    retrain (a new :meth:`train` call) never invalidates stored payloads.
    """

    def __init__(self, codec, name: str | None = None) -> None:
        if isinstance(codec, str):
            codec = codec_by_name(codec)
        self.versioned = VersionedCodec(codec)
        self.name = name if name is not None else codec.name

    @property
    def codec(self):
        """The underlying registry codec."""
        return self.versioned.codec

    @property
    def models(self):
        """The :class:`~repro.codecs.ModelStore` of retained epochs."""
        return self.versioned.models

    def train(self, sample_values: Sequence[str]) -> None:
        self.versioned.train(sample_values)

    def compress(self, value: str) -> bytes:
        return self.versioned.compress_record(value)

    def decompress(self, data: bytes) -> str:
        return self.versioned.decompress_record(data)

    # --------------------------------------------------------- epoch surface

    @property
    def current_epoch(self) -> int:
        return self.versioned.current_epoch

    @property
    def outlier_rate(self) -> float:
        return self.versioned.outlier_rate

    def payload_epoch(self, data: bytes) -> int:
        return payload_epoch(data)

    def compress_at(self, value: str, epoch: int) -> bytes:
        return self.versioned.encode_body(value, self.versioned.models.get(epoch))

    def decompress_at(self, data: bytes, epoch: int) -> str:
        return self.versioned.decode_body(data, epoch)

    def acquire_epoch(self, epoch: int) -> None:
        self.versioned.models.acquire(epoch)

    def release_epoch(self, epoch: int) -> None:
        self.versioned.models.release(epoch)

    def dump_models(self) -> bytes | None:
        # Codec magic leads so a restore with a different compressor fails
        # with a typed mismatch instead of feeding wrong models into decode.
        return bytes([self.codec.codec_id]) + self.versioned.models.to_bytes()

    def load_models(self, data: bytes) -> None:
        if not data:
            raise CodecError("empty persisted model store")
        if data[0] != self.codec.codec_id:
            raise CodecError(
                f"persisted model store was written by codec id {data[0]}, but this "
                f"compressor is {self.codec.name!r} (id {self.codec.codec_id}); "
                "reopen the store with the codec that wrote it"
            )
        self.versioned.restore_models(ModelStore.from_bytes(data[1:]))


class ZstdDictValueCompressor(VersionedValueCompressor):
    """Zstd with a workload-trained dictionary (TierBase's original solution)."""

    def __init__(self, level: int = 3, dictionary_size: int = 4096) -> None:
        super().__init__(ZstdCodec(level=level, dictionary_size=dictionary_size), name="Zstd")
        self.level = level
        self.dictionary_size = dictionary_size


class PBCValueCompressor(VersionedValueCompressor):
    """PBC_F with workload-trained patterns (the paper's integration, Table 8)."""

    def __init__(self, config: ExtractionConfig | None = None, use_fsst: bool = True) -> None:
        self.config = config if config is not None else ExtractionConfig()
        codec_class = PBCFCodec if use_fsst else PBCCodec
        codec = codec_class(config=self.config)
        # "PBC_F" with FSST, plain "PBC" without — the Table 8 row names.
        super().__init__(codec, name="PBC_F" if use_fsst else "PBC")

    @property
    def pbc(self) -> PBCCompressor:
        """A PBC compressor bound to the current model (monitoring and tests).

        Untrained (epoch 0) it is a fresh untrained compressor, matching the
        pre-registry contract of this property.
        """
        payload = self.versioned.models.current.payload
        if not payload:
            return PBCCompressor(config=self.config)
        return self.codec.record_coder(payload)
