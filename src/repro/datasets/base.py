"""Shared infrastructure for the synthetic dataset generators.

The paper evaluates on proprietary production key-value datasets, public log
corpora and JSON corpora (Table 2).  None of those can ship with this
reproduction, so each dataset is replaced by a *seeded synthetic generator*
that emits records with the same structural character: a handful of
machine-generated templates per dataset, realistic field value distributions,
matching average record lengths, and a small outlier fraction (docs/ARCHITECTURE.md,
substitution 1).

Generators are plain functions ``fn(count, rng) -> list[str]`` registered in a
dataset registry together with the paper's Table 2 statistics, so benchmarks
can report paper-vs-generated statistics side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import DatasetError

#: Word pool used to synthesise identifiers, hostnames and message fragments.
_WORDS = (
    "alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda",
    "orders", "payment", "billing", "charging", "account", "session", "cache",
    "router", "gateway", "worker", "scheduler", "replica", "shard", "bucket",
    "index", "search", "metrics", "trace", "audit", "batch", "stream", "queue",
    "user", "client", "tenant", "service", "cluster", "node", "region", "zone",
)

_HEX_DIGITS = "0123456789abcdef"


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one dataset.

    ``paper_records`` and ``paper_avg_len`` are the Table 2 statistics of the
    original corpus; ``default_count`` is the record count the reproduction
    generates by default (scaled down to laptop size).
    """

    name: str
    category: str  # "kv", "log", "json" or "misc"
    description: str
    generator: Callable[[int, random.Random], list[str]]
    default_count: int
    paper_records: float
    paper_avg_len: float


@dataclass(frozen=True)
class DatasetStatistics:
    """Basic statistics of a generated dataset (the Table 2 columns)."""

    name: str
    records: int
    total_bytes: int
    avg_record_len: float
    min_record_len: int
    max_record_len: int


def compute_statistics(name: str, records: Sequence[str]) -> DatasetStatistics:
    """Compute the Table 2 statistics columns for a list of records."""
    if not records:
        raise DatasetError(f"dataset {name!r} generated no records")
    lengths = [len(record.encode("utf-8")) for record in records]
    return DatasetStatistics(
        name=name,
        records=len(records),
        total_bytes=sum(lengths),
        avg_record_len=sum(lengths) / len(lengths),
        min_record_len=min(lengths),
        max_record_len=max(lengths),
    )


# --------------------------------------------------------------------- helpers


def pick_word(rng: random.Random) -> str:
    """Random identifier word."""
    return rng.choice(_WORDS)


def pick_words(rng: random.Random, count: int, separator: str = "_") -> str:
    """Join ``count`` random words with ``separator``."""
    return separator.join(rng.choice(_WORDS) for _ in range(count))


def hex_token(rng: random.Random, length: int) -> str:
    """Random fixed-length lowercase hex string."""
    return "".join(rng.choice(_HEX_DIGITS) for _ in range(length))


def digits(rng: random.Random, length: int) -> str:
    """Random fixed-length decimal digit string (leading zeros allowed)."""
    return "".join(rng.choice("0123456789") for _ in range(length))


def epoch_seconds(rng: random.Random) -> int:
    """Random Unix timestamp inside a plausible 2021-2023 window."""
    return rng.randint(1_609_459_200, 1_703_980_800)


def ip_address(rng: random.Random) -> str:
    """Random dotted-quad IPv4 address."""
    return ".".join(str(rng.randint(1, 254)) for _ in range(4))


def uuid4_string(rng: random.Random) -> str:
    """RFC-4122 style random UUID rendered as the canonical 36-character string."""
    raw = [rng.randint(0, 15) for _ in range(32)]
    raw[12] = 4  # version nibble
    raw[16] = (raw[16] & 0x3) | 0x8  # variant nibble
    text = "".join(_HEX_DIGITS[nibble] for nibble in raw)
    return f"{text[0:8]}-{text[8:12]}-{text[12:16]}-{text[16:20]}-{text[20:32]}"


def weighted_choice(rng: random.Random, options: Sequence[tuple[str, float]]) -> str:
    """Pick one of ``(value, weight)`` options proportionally to the weights."""
    total = sum(weight for _value, weight in options)
    threshold = rng.random() * total
    cumulative = 0.0
    for value, weight in options:
        cumulative += weight
        if threshold <= cumulative:
            return value
    return options[-1][0]
