"""Synthetic JSON datasets: ``github``, ``cities`` and ``unece``.

The paper's JSON corpora are public (GitHub events curated from the Zstd test
data, world cities, and UNECE country statistics).  The generators below emit
JSON documents with the same schema shape and size character: many shared keys,
nested objects, numeric and string values, and (for ``unece``) very long
records composed of many indicator fields.

Every record is rendered with ``json.dumps(..., sort_keys=True)`` so the
key-level redundancy the paper discusses (Section 7.4.2) is present exactly as
it would be in machine-serialised JSON.
"""

from __future__ import annotations

import json
import random

from repro.datasets.base import hex_token, pick_word, uuid4_string

_COUNTRIES = (
    "Austria", "Belgium", "Canada", "Denmark", "Estonia", "Finland", "France",
    "Germany", "Hungary", "Iceland", "Japan", "Latvia", "Mexico", "Norway",
    "Poland", "Portugal", "Sweden", "Switzerland", "Ukraine", "United States",
)

_EVENT_TYPES = ("PushEvent", "PullRequestEvent", "IssuesEvent", "WatchEvent", "ForkEvent", "CreateEvent")

_INDICATORS = (
    "population_mid_year_thousands", "population_density", "total_fertility_rate",
    "life_expectancy_at_birth_women", "life_expectancy_at_birth_men",
    "adolescent_fertility_rate", "computer_use_male", "computer_use_female",
    "gdp_per_capita_us_dollars", "unemployment_rate", "exports_of_goods_percent_gdp",
    "imports_of_goods_percent_gdp", "consumer_price_index", "area_square_kms",
    "women_share_of_labour_force", "internet_users_per_100",
)


def _iso_timestamp(rng: random.Random) -> str:
    return (
        f"20{rng.randint(15, 23):02d}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
        f"T{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}Z"
    )


def generate_github(count: int, rng: random.Random) -> list[str]:
    """GitHub event documents (actor / repo / payload envelopes)."""
    records: list[str] = []
    for _ in range(count):
        login = f"{pick_word(rng)}-{pick_word(rng)}{rng.randint(1, 999)}"
        repo_name = f"{pick_word(rng)}/{pick_word(rng)}-{pick_word(rng)}"
        event_type = rng.choice(_EVENT_TYPES)
        document = {
            "id": str(rng.randint(10**9, 10**10 - 1)),
            "type": event_type,
            "public": True,
            "created_at": _iso_timestamp(rng),
            "actor": {
                "id": rng.randint(1, 10**7),
                "login": login,
                "gravatar_id": "",
                "url": f"https://api.github.com/users/{login}",
                "avatar_url": f"https://avatars.githubusercontent.com/u/{rng.randint(1, 10**7)}?",
            },
            "repo": {
                "id": rng.randint(1, 10**8),
                "name": repo_name,
                "url": f"https://api.github.com/repos/{repo_name}",
            },
            "payload": {
                "push_id": rng.randint(10**9, 10**10 - 1),
                "size": rng.randint(1, 20),
                "distinct_size": rng.randint(1, 20),
                "ref": "refs/heads/" + rng.choice(("main", "master", "develop")),
                "head": hex_token(rng, 40),
                "before": hex_token(rng, 40),
                "commits": [
                    {
                        "sha": hex_token(rng, 40),
                        "author": {"email": f"{login}@users.noreply.github.com", "name": login},
                        "message": f"{rng.choice(('Fix', 'Add', 'Update', 'Remove'))} {pick_word(rng)} {pick_word(rng)}",
                        "distinct": True,
                    }
                    for _ in range(rng.randint(1, 3))
                ],
            },
            "org": {
                "id": rng.randint(1, 10**7),
                "login": pick_word(rng),
                "url": f"https://api.github.com/orgs/{pick_word(rng)}",
            },
        }
        records.append(json.dumps(document, sort_keys=True, separators=(",", ":")))
    return records


def generate_cities(count: int, rng: random.Random) -> list[str]:
    """World-city documents (name, country, coordinates, population)."""
    records: list[str] = []
    for _ in range(count):
        name = f"{pick_word(rng).title()}{rng.choice(('ville', ' City', 'burg', 'ton', ''))}"
        country = rng.choice(_COUNTRIES)
        document = {
            "id": rng.randint(1, 10**7),
            "name": name,
            "country": country,
            "country_code": country[:2].upper(),
            "admin1": f"{pick_word(rng).title()} Province",
            "lat": round(rng.uniform(-90, 90), 5),
            "lng": round(rng.uniform(-180, 180), 5),
            "population": rng.randint(1_000, 30_000_000),
            "elevation_m": rng.randint(-10, 4000),
            "timezone": rng.choice(("Europe/Paris", "Asia/Tokyo", "America/New_York", "UTC")),
            "geoname_id": str(rng.randint(10**6, 10**7)),
        }
        records.append(json.dumps(document, sort_keys=True, separators=(",", ":")))
    return records


def generate_unece(count: int, rng: random.Random) -> list[str]:
    """UNECE country-statistics documents: one very long record per country/year."""
    records: list[str] = []
    for _ in range(count):
        country = rng.choice(_COUNTRIES)
        years = {}
        for year in range(2010, 2010 + rng.randint(7, 9)):
            years[str(year)] = {
                indicator: round(rng.uniform(0, 100_000), 2) for indicator in _INDICATORS
            }
        document = {
            "country": country,
            "iso_code": country[:3].upper(),
            "source": "UNECE statistical database",
            "uuid": uuid4_string(rng),
            "indicators": years,
        }
        records.append(json.dumps(document, sort_keys=True, separators=(",", ":")))
    return records
