"""Synthetic production key-value datasets (KV1-KV5 of Table 2).

Each generator mimics one class of machine-generated value payloads observed in
production key-value stores: records produced by ``sprintf``-style serialisation
with a handful of templates per workload, mixed identifier / numeric /
timestamp fields, and a small fraction of outlier records that match none of
the frequent templates (exercising PBC's outlier path).

The templates are modelled on the paper's own running examples (the
``V5company_charging-100-…accenter…`` record of Figure 2 and the JSON trade
record of Section 1), not on any real proprietary data.
"""

from __future__ import annotations

import random

from repro.datasets.base import (
    digits,
    epoch_seconds,
    hex_token,
    ip_address,
    pick_word,
    uuid4_string,
)

#: Fraction of records generated from a random non-template shape.
_OUTLIER_RATE = 0.01


def _outlier(rng: random.Random) -> str:
    """A record that intentionally matches none of the workload templates."""
    return f"#raw:{hex_token(rng, rng.randint(8, 40))}:{rng.randint(0, 10**6)}"


def generate_kv1(count: int, rng: random.Random) -> list[str]:
    """KV1: accounting/charging records (the Figure 2 example family)."""
    records: list[str] = []
    suffixes = ("ac_accounting_log_", "accounting_log_id", "ac_billing_log_")
    for _ in range(count):
        if rng.random() < _OUTLIER_RATE:
            records.append(_outlier(rng))
            continue
        suffix = rng.choice(suffixes)
        records.append(
            f"V5company_charging-100-{digits(rng, 2)}accenter{digits(rng, 2)}"
            f"{suffix}202{digits(rng, 6)}"
        )
    return records


def generate_kv2(count: int, rng: random.Random) -> list[str]:
    """KV2: serialised trade objects (the Section 1 JSON trade example)."""
    symbols = ("IBM", "AAPL", "MSFT", "GOOG", "BABA", "TSLA", "AMZN", "NVDA")
    records: list[str] = []
    for _ in range(count):
        if rng.random() < _OUTLIER_RATE:
            records.append(_outlier(rng))
            continue
        template = rng.random()
        symbol = rng.choice(symbols)
        side = rng.choice("BS")
        quantity = rng.randint(1, 99_999)
        price = rng.randint(100, 99_999) / 100
        timestamp = epoch_seconds(rng)
        if template < 0.55:
            records.append(
                '{"symbol": "%s", "side": "%s", "quantity": %d, "price": %.2f, '
                '"timestamp": %d, "venue": "SSE", "account": "ACC%s", '
                '"order_id": "%s"}'
                % (symbol, side, quantity, price, timestamp, digits(rng, 8), uuid4_string(rng))
            )
        elif template < 0.85:
            records.append(
                '{"symbol": "%s", "side": "%s", "quantity": %d, "price": %.2f, '
                '"timestamp": %d, "settle": "T+%d", "account": "ACC%s"}'
                % (symbol, side, quantity, price, timestamp, rng.randint(0, 2), digits(rng, 8))
            )
        else:
            records.append(
                "trade|%s|%s|%d|%.2f|%d|node-%02d|%s"
                % (symbol, side, quantity, price, timestamp, rng.randint(0, 31), hex_token(rng, 16))
            )
    return records


def generate_kv3(count: int, rng: random.Random) -> list[str]:
    """KV3: session-cache entries keyed by user and device."""
    records: list[str] = []
    platforms = ("android", "ios", "web", "mini")
    for _ in range(count):
        if rng.random() < _OUTLIER_RATE:
            records.append(_outlier(rng))
            continue
        platform = rng.choice(platforms)
        records.append(
            f"session:{uuid4_string(rng)}:uid={digits(rng, 10)}:plat={platform}"
            f":ip={ip_address(rng)}:exp={epoch_seconds(rng)}:flags=0x{hex_token(rng, 4)}"
        )
    return records


def generate_kv4(count: int, rng: random.Random) -> list[str]:
    """KV4: short counter records (the shortest production workload)."""
    records: list[str] = []
    for _ in range(count):
        if rng.random() < _OUTLIER_RATE:
            records.append(_outlier(rng))
            continue
        records.append(
            f"cnt:{pick_word(rng)}:{digits(rng, 6)}:{rng.randint(0, 9999)}:{digits(rng, 10)}"
        )
    return records


def generate_kv5(count: int, rng: random.Random) -> list[str]:
    """KV5: feature-flag / config payloads with key=value pairs."""
    records: list[str] = []
    for _ in range(count):
        if rng.random() < _OUTLIER_RATE:
            records.append(_outlier(rng))
            continue
        records.append(
            f"cfg;tenant={digits(rng, 6)};group={pick_word(rng)};"
            f"enabled={rng.choice(('true', 'false'))};rollout={rng.randint(0, 100)};"
            f"rev={digits(rng, 8)}"
        )
    return records
