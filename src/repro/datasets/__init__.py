"""Synthetic dataset registry for the paper's 16 evaluation datasets (Table 2).

Usage::

    from repro.datasets import load_dataset, dataset_names, dataset_statistics

    records = load_dataset("kv2", count=2000)
    stats = dataset_statistics("kv2", records)

Every generator is deterministic for a given ``seed``, so benchmark results are
reproducible run to run.  ``DATASET_SPECS`` carries the paper's Table 2
statistics (record count, average record length) next to each generator so the
Table 2 benchmark can print paper-vs-generated columns.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.datasets import json_data, kv, logs, misc, trades
from repro.datasets.base import DatasetSpec, DatasetStatistics, compute_statistics
from repro.exceptions import DatasetError

#: Default seed used by :func:`load_dataset`; matches the paper's publication year.
DEFAULT_SEED = 2023

DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("kv1", "kv", "accounting/charging records (Figure 2 family)", kv.generate_kv1, 4000, 33.1e9, 71.5),
        DatasetSpec("kv2", "kv", "serialised financial trade objects", kv.generate_kv2, 3000, 20.9e9, 158.6),
        DatasetSpec("kv3", "kv", "session-cache entries", kv.generate_kv3, 3000, 2.86e6, 90.6),
        DatasetSpec("kv4", "kv", "short counter records", kv.generate_kv4, 4000, 418e3, 44.1),
        DatasetSpec("kv5", "kv", "feature-flag / config payloads", kv.generate_kv5, 4000, 2.68e6, 53.1),
        DatasetSpec("android", "log", "Android logcat lines", logs.generate_android, 2500, 1.55e6, 129.7),
        DatasetSpec("apache", "log", "Apache error-log lines", logs.generate_apache, 3000, 56.5e3, 63.9),
        DatasetSpec("bgl", "log", "BlueGene/L RAS log lines", logs.generate_bgl, 2000, 4.75e6, 164.1),
        DatasetSpec("hdfs", "log", "HDFS DataNode log lines", logs.generate_hdfs, 2500, 11.2e6, 141.2),
        DatasetSpec("hadoop", "log", "Hadoop MapReduce AM log lines", logs.generate_hadoop, 1500, 2.61e6, 266.9),
        DatasetSpec("alilogs", "log", "industrial cloud key=value traces", logs.generate_alilogs, 1200, 350e3, 299.2),
        DatasetSpec("github", "json", "GitHub event documents", json_data.generate_github, 600, 8.6e3, 863.8),
        DatasetSpec("cities", "json", "world-city documents", json_data.generate_cities, 1500, 148e3, 232.2),
        DatasetSpec("unece", "json", "UNECE country-statistics documents", json_data.generate_unece, 120, 0.81e3, 4494.8),
        DatasetSpec("urls", "misc", "HTTP URLs (FSST corpus)", misc.generate_urls, 4000, 100e3, 63.1),
        DatasetSpec("uuid", "misc", "random UUID strings (FSST corpus)", misc.generate_uuid, 5000, 100e3, 35.6),
    )
}

#: Datasets that are not part of the paper's Table 2 corpus but ship with the
#: reproduction for the examples (the introduction's financial-trade workload).
EXTRA_DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            "trades", "extra", "financial trade records (Section 1 motivating example)",
            trades.generate_trades, 4000, 0, 95.0,
        ),
    )
}

#: Dataset groups used by the per-category benchmarks.
LOG_DATASETS = tuple(name for name, spec in DATASET_SPECS.items() if spec.category == "log")
JSON_DATASETS = tuple(name for name, spec in DATASET_SPECS.items() if spec.category == "json")
KV_DATASETS = tuple(name for name, spec in DATASET_SPECS.items() if spec.category == "kv")


def dataset_names() -> list[str]:
    """Names of the Table 2 datasets, in Table 2 order (extras excluded)."""
    return list(DATASET_SPECS)


def extra_dataset_names() -> list[str]:
    """Names of the extra (non-Table 2) datasets."""
    return list(EXTRA_DATASET_SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Return the registry entry for ``name`` (case-insensitive, extras included)."""
    key = name.lower()
    if key in DATASET_SPECS:
        return DATASET_SPECS[key]
    if key in EXTRA_DATASET_SPECS:
        return EXTRA_DATASET_SPECS[key]
    raise DatasetError(
        f"unknown dataset {name!r}; available: {dataset_names() + extra_dataset_names()}"
    )


def load_dataset(name: str, count: int | None = None, seed: int = DEFAULT_SEED) -> list[str]:
    """Generate the dataset ``name`` with ``count`` records (default: registry default)."""
    spec = get_spec(name)
    record_count = spec.default_count if count is None else count
    if record_count <= 0:
        raise DatasetError("record count must be positive")
    # Seed with a string so the stream is independent of hash randomisation.
    rng = random.Random(f"{spec.name}:{seed}:{record_count}")
    return spec.generator(record_count, rng)


def dataset_statistics(name: str, records: Sequence[str] | None = None) -> DatasetStatistics:
    """Table 2 statistics for a dataset (generating it first when needed)."""
    spec = get_spec(name)
    if records is None:
        records = load_dataset(name)
    return compute_statistics(spec.name, records)


__all__ = [
    "DATASET_SPECS",
    "DEFAULT_SEED",
    "DatasetSpec",
    "DatasetStatistics",
    "EXTRA_DATASET_SPECS",
    "JSON_DATASETS",
    "KV_DATASETS",
    "LOG_DATASETS",
    "compute_statistics",
    "dataset_names",
    "dataset_statistics",
    "extra_dataset_names",
    "get_spec",
    "load_dataset",
]
