"""Synthetic log datasets mirroring the LogHub corpora used in the paper.

The original evaluation uses Android, Apache, BGL, HDFS and Hadoop logs from
LogHub plus an industrial cloud log (AliLogs).  Each generator below emits log
lines in the corresponding dialect: the same line layout (timestamp format,
level, component, message templates with numeric/identifier parameters) at a
reduced scale, which is what both PBC's pattern extraction and the
LogReducer-style parser operate on.
"""

from __future__ import annotations

import random

from repro.datasets.base import digits, hex_token, ip_address, pick_word

_MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
_DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def _clock(rng: random.Random) -> tuple[int, int, int]:
    return rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59)


def generate_android(count: int, rng: random.Random) -> list[str]:
    """Android logcat lines: ``MM-DD HH:MM:SS.mmm  PID  TID LEVEL Tag: message``."""
    tags = ("PowerManagerService", "ActivityManager", "WindowManager", "SensorService", "WifiStateMachine")
    templates = (
        "acquire lock={}, flags=0x{}, tag=RILJ, name=com.android.phone, ws=null, uid={}, pid={}",
        "Start proc {}:{}/u0a{} for service {}",
        "setSystemUiVisibility vis={} mask={} oldVal={} newVal={}",
        "battery level changed from {} to {}",
        "Scheduling restart of crashed service {} in {}ms",
    )
    records: list[str] = []
    for _ in range(count):
        month, day = rng.randint(1, 12), rng.randint(1, 28)
        hour, minute, second = _clock(rng)
        tag = rng.choice(tags)
        template = rng.choice(templates)
        message = template.format(
            rng.randint(10000000, 99999999),
            hex_token(rng, 8),
            rng.randint(100, 99999),
            rng.randint(100, 99999),
        )
        records.append(
            f"{month:02d}-{day:02d} {hour:02d}:{minute:02d}:{second:02d}."
            f"{rng.randint(0, 999):03d}  {rng.randint(100, 9999)}  {rng.randint(100, 9999)} "
            f"{rng.choice('VDIWE')} {tag}: {message}"
        )
    return records


def generate_apache(count: int, rng: random.Random) -> list[str]:
    """Apache error-log lines."""
    messages = (
        "mod_jk child workerEnv in error state {}",
        "jk2_init() Found child {} in scoreboard slot {}",
        "workerEnv.init() ok /etc/httpd/conf/workers2.properties",
        "[client {}] Directory index forbidden by rule: /var/www/html/",
    )
    records: list[str] = []
    for _ in range(count):
        day_name = rng.choice(_DAYS)
        month = rng.choice(_MONTHS)
        hour, minute, second = _clock(rng)
        level = rng.choice(("error", "notice", "warn"))
        message = rng.choice(messages).format(
            rng.randint(1, 9), rng.randint(100, 9999), ip_address(rng)
        )
        records.append(
            f"[{day_name} {month} {rng.randint(1, 28):02d} {hour:02d}:{minute:02d}:{second:02d} 2005] "
            f"[{level}] {message}"
        )
    return records


def generate_bgl(count: int, rng: random.Random) -> list[str]:
    """BlueGene/L RAS log lines."""
    messages = (
        "instruction cache parity error corrected",
        "generating core.{}",
        "double-hummer alignment exceptions",
        "{} ddr errors(s) detected and corrected on rank {}, symbol {}, bit {}",
        "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to {}:{}",
    )
    records: list[str] = []
    for _ in range(count):
        timestamp = rng.randint(1_117_000_000, 1_118_000_000)
        rack, midplane, node, card = rng.randint(0, 63), rng.randint(0, 1), rng.randint(0, 3), rng.randint(0, 15)
        location = f"R{rack:02d}-M{midplane}-N{node}-C:J{card:02d}-U{rng.randint(1, 64):02d}"
        date = f"2005.06.{rng.randint(1, 28):02d}"
        hour, minute, second = _clock(rng)
        fine = f"2005-06-{rng.randint(1, 28):02d}-{hour:02d}.{minute:02d}.{second:02d}.{rng.randint(0, 999999):06d}"
        level = rng.choice(("INFO", "WARNING", "ERROR", "FATAL"))
        message = rng.choice(messages).format(
            rng.randint(100, 9999), rng.randint(0, 7), rng.randint(0, 71), rng.randint(0, 7)
        )
        records.append(f"- {timestamp} {date} {location} {fine} {location} RAS KERNEL {level} {message}")
    return records


def generate_hdfs(count: int, rng: random.Random) -> list[str]:
    """HDFS DataNode/namesystem log lines keyed by block ids."""
    templates = (
        "dfs.DataNode$PacketResponder: PacketResponder {} for block blk_{} terminating",
        "dfs.DataNode$DataXceiver: Receiving block blk_{} src: /{}:{} dest: /{}:{}",
        "dfs.FSNamesystem: BLOCK* NameSystem.addStoredBlock: blockMap updated: {}:{} is added to blk_{} size {}",
        "dfs.DataNode$DataXceiver: writeBlock blk_{} received exception java.io.IOException",
    )
    records: list[str] = []
    for _ in range(count):
        date = f"0811{rng.randint(10, 28):02d}"
        clock = f"{rng.randint(0, 23):02d}{rng.randint(0, 59):02d}{rng.randint(0, 59):02d}"
        block = rng.randint(10**15, 10**19 - 1)
        message = rng.choice(templates).format(
            rng.randint(0, 3),
            block,
            ip_address(rng),
            rng.randint(1024, 65535),
            ip_address(rng),
        )
        records.append(f"{date} {clock} {rng.randint(1, 999)} INFO {message}")
    return records


def generate_hadoop(count: int, rng: random.Random) -> list[str]:
    """Hadoop MapReduce ApplicationMaster log lines (the longest log dialect)."""
    classes = (
        "org.apache.hadoop.mapreduce.v2.app.MRAppMaster",
        "org.apache.hadoop.yarn.client.api.impl.ContainerManagementProtocolProxy",
        "org.apache.hadoop.mapreduce.v2.app.job.impl.TaskAttemptImpl",
        "org.apache.hadoop.ipc.Client",
    )
    templates = (
        "Created MRAppMaster for application appattempt_{}_{:04d}_{:06d}",
        "Opening proxy : {}:{}",
        "attempt_{}_{:04d}_m_{:06d}_0 TaskAttempt Transitioned from RUNNING to SUCCESS_CONTAINER_CLEANUP",
        "Retrying connect to server: {}/{}:{}. Already tried {} time(s); retry policy is RetryUpToMaximumCountWithFixedSleep",
    )
    records: list[str] = []
    for _ in range(count):
        date = f"2015-10-{rng.randint(1, 28):02d}"
        hour, minute, second = _clock(rng)
        level = rng.choice(("INFO", "WARN", "ERROR"))
        cls = rng.choice(classes)
        message = rng.choice(templates).format(
            rng.randint(1_445_000_000_000, 1_445_999_999_999),
            rng.randint(1, 9999),
            rng.randint(1, 999999),
            rng.randint(1, 50),
        )
        records.append(
            f"{date} {hour:02d}:{minute:02d}:{second:02d},{rng.randint(0, 999):03d} {level} "
            f"[{rng.choice(('main', 'AsyncDispatcher event handler', 'IPC Server handler ' + str(rng.randint(0, 31)) + ' on ' + str(rng.randint(10000, 65535))))}] "
            f"{cls}: {message}"
        )
    return records


def generate_alilogs(count: int, rng: random.Random) -> list[str]:
    """Industrial cloud logs: long structured key=value service traces."""
    services = ("storage-gateway", "rpc-router", "quota-service", "auth-center", "meta-sync")
    records: list[str] = []
    for _ in range(count):
        service = rng.choice(services)
        pairs = [
            f"ts={rng.randint(1_650_000_000_000, 1_659_999_999_999)}",
            f"service={service}",
            f"trace_id={hex_token(rng, 32)}",
            f"span_id={hex_token(rng, 16)}",
            f"cluster=cn-{pick_word(rng)}-{rng.randint(1, 9)}",
            f"pod={service}-{digits(rng, 5)}-{hex_token(rng, 5)}",
            f"client_ip={ip_address(rng)}",
            f"latency_ms={rng.randint(0, 5000)}",
            f"status={rng.choice(('OK', 'TIMEOUT', 'THROTTLED', 'ERROR'))}",
            f"bytes_in={rng.randint(0, 10**7)}",
            f"bytes_out={rng.randint(0, 10**7)}",
            f"retry={rng.randint(0, 3)}",
            f"queue_depth={rng.randint(0, 512)}",
            f"shard={rng.randint(0, 1023)}",
        ]
        records.append("|".join(pairs))
    return records
