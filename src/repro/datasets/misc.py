"""Capacity-boundary datasets: ``urls`` and ``uuid``.

The paper uses these two FSST test corpora to probe where pattern-based
compression stops paying off: URLs still share long common subsequences
(scheme, host, path prefixes), while random UUIDs share almost nothing beyond
the dash positions, so PBC's advantage should shrink to roughly the dictionary
overhead (Table 3 / Table 4, ``uuid`` row).
"""

from __future__ import annotations

import random

from repro.datasets.base import hex_token, pick_word, uuid4_string

_HOSTS = (
    "www.example.com", "cdn.assets.example.net", "api.internal.example.org",
    "img.shop.example.com", "static.news.example.io", "m.media.example.cn",
)

_PATH_ROOTS = ("products", "articles", "users", "images", "search", "category", "download")


def generate_urls(count: int, rng: random.Random) -> list[str]:
    """HTTP(S) URLs with shared hosts and path prefixes plus query parameters."""
    records: list[str] = []
    for _ in range(count):
        host = rng.choice(_HOSTS)
        root = rng.choice(_PATH_ROOTS)
        scheme = "https" if rng.random() < 0.8 else "http"
        path = f"/{root}/{pick_word(rng)}/{rng.randint(1, 10**6)}"
        if rng.random() < 0.6:
            path += f"?ref={pick_word(rng)}&session={hex_token(rng, 12)}&page={rng.randint(1, 50)}"
        records.append(f"{scheme}://{host}{path}")
    return records


def generate_uuid(count: int, rng: random.Random) -> list[str]:
    """Random RFC-4122 UUID strings (essentially incompressible content)."""
    return [uuid4_string(rng) for _ in range(count)]
