"""Financial trade records — the paper's introductory motivating example.

Section 1 of the paper motivates PBC with a C ``struct trade`` serialised to
JSON through a fixed ``sprintf`` template: the 66-byte template dwarfs the
~22 bytes of actual values.  This generator reproduces that workload — JSON
trade records from a handful of serialisation templates (different services
emit slightly different layouts), with realistic symbol/price/quantity
distributions and a small outlier fraction.

The dataset is registered as an *extra* dataset (it is not part of the paper's
Table 2 corpus) and is used by ``examples/trade_records.py``.
"""

from __future__ import annotations

import random

from repro.datasets.base import hex_token

_SYMBOLS = (
    "IBM", "AAPL", "GOOG", "MSFT", "AMZN", "TSLA", "NVDA", "META", "ORCL", "INTC",
    "BABA", "TSM", "NFLX", "AMD", "CRM", "UBER",
)

_VENUES = ("NYSE", "NASDAQ", "ARCA", "BATS", "IEX")

_ACCOUNTS = ("alpha-fund", "beta-desk", "gamma-prop", "delta-retail", "omega-mm")


def _price(rng: random.Random) -> str:
    """A plausible trade price with two decimals."""
    return f"{rng.uniform(5, 900):.2f}"


def _timestamp(rng: random.Random) -> int:
    """An epoch timestamp inside a single trading year."""
    return rng.randint(1_672_531_200, 1_704_067_199)


def generate_trades(count: int, rng: random.Random) -> list[str]:
    """JSON trade records emitted by a few fixed serialisation templates."""
    records: list[str] = []
    for index in range(count):
        symbol = rng.choice(_SYMBOLS)
        side = rng.choice("BS")
        quantity = rng.choice((100, 200, 250, 500, 1000, rng.randint(1, 5000)))
        price = _price(rng)
        timestamp = _timestamp(rng)
        template = index % 10
        if template < 5:
            # The paper's introductory to_json() template.
            records.append(
                f'{{"symbol": "{symbol}", "side": "{side}", "quantity": {quantity}, '
                f'"price": {price}, "timestamp": {timestamp}}}'
            )
        elif template < 8:
            # A richer execution-report template from another service.
            records.append(
                f'{{"exec_id": "EX-{hex_token(rng, 10)}", "venue": "{rng.choice(_VENUES)}", '
                f'"symbol": "{symbol}", "side": "{side}", "qty": {quantity}, "px": {price}, '
                f'"account": "{rng.choice(_ACCOUNTS)}", "ts": {timestamp}}}'
            )
        elif template < 9:
            # A compact FIX-like key=value template.
            records.append(
                f"35=8|55={symbol}|54={1 if side == 'B' else 2}|38={quantity}|44={price}"
                f"|60={timestamp}|17=EX{hex_token(rng, 8)}"
            )
        else:
            # Occasional free-form outlier (manual adjustment entries).
            records.append(
                f"manual adjustment for {symbol.lower()} booked by ops-{rng.randint(1, 9)}: "
                f"{rng.choice(('fee', 'rebate', 'bust', 'correction'))} {price}"
            )
    return records
