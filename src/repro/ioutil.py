"""Durable file-system primitives shared by every persistence layer.

Durability on a POSIX file system is a three-step contract, and every layer
that persists state (the LSM write-ahead log, SSTable publication, the
TierBase ``TBS2`` snapshot, the persisted model store) goes through the same
helpers so none of them forgets a step:

1. ``flush`` — drain Python's userspace buffer into the kernel.  After this a
   **process** crash (SIGKILL) cannot lose the bytes; a machine crash can.
2. ``fsync`` the file — ask the kernel to put the bytes on stable storage.
   After this a machine crash cannot lose the bytes either.
3. ``fsync`` the **directory** — a freshly created or renamed file is only
   durably reachable once its directory entry is on disk too.

:func:`atomic_write_bytes` composes the three with ``os.replace`` into the
standard write-new/rename-over publication pattern: readers only ever observe
the old complete file or the new complete file, never a torn one.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import BinaryIO


def fsync_file(handle: BinaryIO) -> None:
    """Flush ``handle`` and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_directory(path: str | Path) -> None:
    """Force the directory entry updates under ``path`` to stable storage.

    Best-effort: platforms where a directory cannot be opened for reading
    (Windows) silently skip the sync — renames there are already as durable
    as the platform allows.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, sync: bool = True) -> None:
    """Atomically publish ``data`` at ``path`` via a ``*.tmp`` sibling.

    The bytes are written to ``<name>.tmp``, optionally fsynced, then
    ``os.replace``-d over ``path`` (atomic on POSIX and Windows), and with
    ``sync`` the directory entry is fsynced as well.  A crash at any point
    leaves either the previous complete file or the new complete file at
    ``path`` — plus possibly a stale ``*.tmp`` sibling, which the next
    successful write simply overwrites.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        if sync:
            fsync_file(handle)
    os.replace(tmp, path)
    if sync:
        fsync_directory(path.parent)
