"""Fixed-depth log template parser (the Drain/Logzip-style parser substrate).

LogReducer (and Logzip before it) depends on an external log parser that turns
every log line into ``(template, parameters)`` where the template is the
constant part of the line and the parameters are the variable tokens.  This
module implements that substrate: a fixed-depth prefix-tree parser in the
spirit of Drain.

Parsing model
-------------
* a line is tokenised by splitting on single spaces (empty tokens are kept, so
  joining the tokens with a space reproduces the original line byte-for-byte);
* lines are grouped by token count and by their first non-parameter tokens (the
  tree levels); within a leaf group the line is compared to existing templates
  with a token-wise similarity score;
* when the best similarity clears the threshold the line joins that template
  and mismatching template tokens degrade to the parameter marker ``<*>``;
  otherwise a new template is created.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Token marker for parameter (variable) positions inside a template.
PARAMETER_TOKEN = "<*>"

_DIGIT = re.compile(r"\d")


def tokenize_line(line: str) -> list[str]:
    """Split a log line into tokens on single spaces, preserving empty tokens."""
    return line.split(" ")


def detokenize_line(tokens: Sequence[str]) -> str:
    """Inverse of :func:`tokenize_line`."""
    return " ".join(tokens)


def looks_variable(token: str) -> bool:
    """Heuristic used when seeding templates: tokens containing digits are variables."""
    return bool(_DIGIT.search(token))


@dataclass
class LogTemplate:
    """One log template: constant tokens with ``<*>`` at parameter positions."""

    template_id: int
    tokens: list[str]
    count: int = 0

    @property
    def template(self) -> str:
        """The template rendered as a single string."""
        return detokenize_line(self.tokens)

    @property
    def parameter_count(self) -> int:
        """Number of parameter positions."""
        return sum(1 for token in self.tokens if token == PARAMETER_TOKEN)

    def extract_parameters(self, tokens: Sequence[str]) -> list[str]:
        """Values of the parameter positions of ``tokens`` (same length as template)."""
        return [value for slot, value in zip(self.tokens, tokens) if slot == PARAMETER_TOKEN]

    def reconstruct(self, parameters: Sequence[str]) -> str:
        """Rebuild a full log line from parameter values."""
        values = iter(parameters)
        tokens = [next(values) if token == PARAMETER_TOKEN else token for token in self.tokens]
        return detokenize_line(tokens)


@dataclass
class ParsedLine:
    """Result of parsing one line: the owning template and its parameter values."""

    template_id: int
    parameters: list[str]


@dataclass
class _LeafGroup:
    """Leaf of the parse tree: the templates sharing a token count and prefix."""

    templates: list[LogTemplate] = field(default_factory=list)


class LogParser:
    """Fixed-depth prefix-tree template parser.

    Parameters
    ----------
    similarity_threshold:
        Minimum fraction of constant-token agreement for a line to join an
        existing template.
    tree_depth:
        Number of leading tokens used as tree levels before the leaf group.
    """

    def __init__(self, similarity_threshold: float = 0.5, tree_depth: int = 3) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        if tree_depth < 1:
            raise ValueError("tree_depth must be at least 1")
        self.similarity_threshold = similarity_threshold
        self.tree_depth = tree_depth
        self.templates: dict[int, LogTemplate] = {}
        self._groups: dict[tuple, _LeafGroup] = {}
        self._next_id = 0

    # ------------------------------------------------------------------ parse

    def parse_line(self, line: str) -> ParsedLine:
        """Parse one line, creating or updating templates as needed."""
        tokens = tokenize_line(line)
        group = self._group_for(tokens)
        template = self._best_template(group, tokens)
        if template is None:
            template = self._new_template(tokens)
            group.templates.append(template)
        else:
            self._absorb(template, tokens)
        template.count += 1
        return ParsedLine(template_id=template.template_id, parameters=template.extract_parameters(tokens))

    def parse(self, lines: Iterable[str]) -> list[ParsedLine]:
        """Parse many lines."""
        return [self.parse_line(line) for line in lines]

    def get_template(self, template_id: int) -> LogTemplate:
        """Look up a template by id."""
        return self.templates[template_id]

    # -------------------------------------------------------------- internals

    def _group_key(self, tokens: Sequence[str]) -> tuple:
        prefix = []
        for token in tokens[: self.tree_depth]:
            prefix.append(PARAMETER_TOKEN if looks_variable(token) else token)
        return (len(tokens), tuple(prefix))

    def _group_for(self, tokens: Sequence[str]) -> _LeafGroup:
        key = self._group_key(tokens)
        group = self._groups.get(key)
        if group is None:
            group = _LeafGroup()
            self._groups[key] = group
        return group

    @staticmethod
    def _similarity(template_tokens: Sequence[str], tokens: Sequence[str]) -> float:
        matches = sum(
            1
            for slot, value in zip(template_tokens, tokens)
            if slot == value and slot != PARAMETER_TOKEN
        )
        constants = sum(1 for slot in template_tokens if slot != PARAMETER_TOKEN)
        if constants == 0:
            return 1.0
        return matches / constants

    def _best_template(self, group: _LeafGroup, tokens: Sequence[str]) -> LogTemplate | None:
        best: LogTemplate | None = None
        best_similarity = 0.0
        for template in group.templates:
            similarity = self._similarity(template.tokens, tokens)
            if similarity > best_similarity:
                best, best_similarity = template, similarity
        if best is not None and best_similarity >= self.similarity_threshold:
            return best
        return None

    def _new_template(self, tokens: Sequence[str]) -> LogTemplate:
        template_tokens = [PARAMETER_TOKEN if looks_variable(token) else token for token in tokens]
        template = LogTemplate(template_id=self._next_id, tokens=template_tokens)
        self.templates[template.template_id] = template
        self._next_id += 1
        return template

    @staticmethod
    def _absorb(template: LogTemplate, tokens: Sequence[str]) -> None:
        """Degrade template tokens that disagree with the new line to parameters."""
        for index, (slot, value) in enumerate(zip(template.tokens, tokens)):
            if slot != PARAMETER_TOKEN and slot != value:
                template.tokens[index] = PARAMETER_TOKEN
