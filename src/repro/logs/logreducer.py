"""LogReducer-style log-file compressor (Wei et al., FAST 2021).

LogReducer builds on a log parser: every line is split into a template id and
parameter values, templates are stored once, and the parameter streams are
compressed column-wise with encodings specialised for the dominant value kinds
in logs — timestamps and other numeric variables are stored as zigzag deltas,
everything else as length-prefixed text — before a final LZMA pass over the
whole container.

This reproduction implements that architecture on top of
:class:`repro.logs.parser.LogParser` (the parser substrate) and the stdlib LZMA
codec.  It is a *file* compressor: like the original, it needs the whole log to
exploit cross-line redundancy, so it competes against ``PBC_L`` in Table 5, not
against the per-record variants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.compressors.stdlib_codecs import LZMACodec
from repro.entropy.varint import (
    decode_uvarint,
    decode_zigzag,
    encode_uvarint,
    encode_zigzag,
)
from repro.exceptions import DecodingError
from repro.logs.parser import PARAMETER_TOKEN, LogParser, detokenize_line, tokenize_line

#: Column kinds used in the container format.
_NUMERIC_COLUMN = 0
_TEXT_COLUMN = 1


@dataclass
class LogCompressionStats:
    """Ratio and throughput of one log-compression run."""

    original_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float
    template_count: int

    @property
    def ratio(self) -> float:
        """Compressed size divided by original size."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def compress_mb_per_second(self) -> float:
        if self.compress_seconds <= 0:
            return 0.0
        return self.original_bytes / 1e6 / self.compress_seconds

    @property
    def decompress_mb_per_second(self) -> float:
        if self.decompress_seconds <= 0:
            return 0.0
        return self.original_bytes / 1e6 / self.decompress_seconds


def _encode_text(value: str) -> bytes:
    payload = value.encode("utf-8")
    return encode_uvarint(len(payload)) + payload


def _decode_text(data: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise DecodingError("truncated LogReducer text value")
    return data[offset:end].decode("utf-8"), end


class LogReducerCodec:
    """Parser-based whole-file log compressor with numeric delta encoding."""

    name = "LogReducer"

    def __init__(self, preset: int = 9, similarity_threshold: float = 0.5) -> None:
        self.backend = LZMACodec(preset=preset)
        self.similarity_threshold = similarity_threshold

    # --------------------------------------------------------------- compress

    def compress_lines(self, lines: Sequence[str]) -> bytes:
        """Compress a whole log file given as a list of lines."""
        parser = LogParser(similarity_threshold=self.similarity_threshold)
        parsed = parser.parse(lines)

        # Re-extract parameters against the *final* templates: templates may have
        # degraded more slots to parameters after a line was first parsed.
        line_template_ids = [item.template_id for item in parsed]
        per_template_rows: dict[int, list[list[str]]] = {}
        for line, template_id in zip(lines, line_template_ids):
            template = parser.get_template(template_id)
            values = template.extract_parameters(tokenize_line(line))
            per_template_rows.setdefault(template_id, []).append(values)

        container = bytearray()
        container += encode_uvarint(len(lines))

        # Template dictionary.
        template_ids = sorted(parser.templates)
        container += encode_uvarint(len(template_ids))
        for template_id in template_ids:
            container += encode_uvarint(template_id)
            container += _encode_text(parser.templates[template_id].template)

        # Line -> template id stream.
        for template_id in line_template_ids:
            container += encode_uvarint(template_id)

        # Column-wise parameter streams, one group per template.
        for template_id in template_ids:
            rows = per_template_rows.get(template_id, [])
            container += encode_uvarint(len(rows))
            column_count = parser.templates[template_id].parameter_count
            container += encode_uvarint(column_count)
            for column_index in range(column_count):
                column = [row[column_index] for row in rows]
                container += self._encode_column(column)

        blob = self.backend.compress(bytes(container))
        return blob

    @staticmethod
    def _encode_column(column: list[str]) -> bytes:
        """Encode one parameter column (numeric delta encoding when possible)."""
        out = bytearray()
        is_numeric = bool(column) and all(
            value.isascii() and value.isdigit() and (value == "0" or value[0] != "0") and len(value) < 19
            for value in column
        )
        if is_numeric:
            out.append(_NUMERIC_COLUMN)
            previous = 0
            for value in column:
                number = int(value)
                out += encode_zigzag(number - previous)
                previous = number
        else:
            out.append(_TEXT_COLUMN)
            for value in column:
                out += _encode_text(value)
        return bytes(out)

    # ------------------------------------------------------------- decompress

    def decompress_lines(self, data: bytes) -> list[str]:
        """Invert :meth:`compress_lines`."""
        container = self.backend.decompress(data)
        offset = 0
        line_count, offset = decode_uvarint(container, offset)

        template_count, offset = decode_uvarint(container, offset)
        templates: dict[int, str] = {}
        template_ids: list[int] = []
        for _ in range(template_count):
            template_id, offset = decode_uvarint(container, offset)
            text, offset = _decode_text(container, offset)
            templates[template_id] = text
            template_ids.append(template_id)

        line_template_ids: list[int] = []
        for _ in range(line_count):
            template_id, offset = decode_uvarint(container, offset)
            line_template_ids.append(template_id)

        per_template_rows: dict[int, list[list[str]]] = {}
        for template_id in template_ids:
            row_count, offset = decode_uvarint(container, offset)
            column_count, offset = decode_uvarint(container, offset)
            columns: list[list[str]] = []
            for _ in range(column_count):
                column, offset = self._decode_column(container, offset, row_count)
                columns.append(column)
            rows = [[column[row_index] for column in columns] for row_index in range(row_count)]
            per_template_rows[template_id] = rows

        # Reassemble lines in original order.
        consumed: dict[int, int] = {template_id: 0 for template_id in template_ids}
        lines: list[str] = []
        for template_id in line_template_ids:
            rows = per_template_rows[template_id]
            row = rows[consumed[template_id]]
            consumed[template_id] += 1
            lines.append(self._reconstruct(templates[template_id], row))
        return lines

    @staticmethod
    def _decode_column(container: bytes, offset: int, row_count: int) -> tuple[list[str], int]:
        if offset >= len(container):
            raise DecodingError("truncated LogReducer column")
        kind = container[offset]
        offset += 1
        column: list[str] = []
        if kind == _NUMERIC_COLUMN:
            previous = 0
            for _ in range(row_count):
                delta, offset = decode_zigzag(container, offset)
                previous += delta
                column.append(str(previous))
        elif kind == _TEXT_COLUMN:
            for _ in range(row_count):
                value, offset = _decode_text(container, offset)
                column.append(value)
        else:
            raise DecodingError(f"unknown LogReducer column kind {kind}")
        return column, offset

    @staticmethod
    def _reconstruct(template: str, parameters: Sequence[str]) -> str:
        values = iter(parameters)
        tokens = [
            next(values) if token == PARAMETER_TOKEN else token for token in tokenize_line(template)
        ]
        return detokenize_line(tokens)

    # ---------------------------------------------------------------- measure

    def measure(self, lines: Sequence[str]) -> LogCompressionStats:
        """Compress and decompress ``lines``, verify the roundtrip, and time it."""
        original = "\n".join(lines)
        started = time.perf_counter()
        blob = self.compress_lines(lines)
        compress_seconds = time.perf_counter() - started
        started = time.perf_counter()
        restored = self.decompress_lines(blob)
        decompress_seconds = time.perf_counter() - started
        if restored != list(lines):
            raise DecodingError("LogReducer roundtrip mismatch")
        parser = LogParser(similarity_threshold=self.similarity_threshold)
        parser.parse(lines)
        return LogCompressionStats(
            original_bytes=len(original.encode("utf-8")),
            compressed_bytes=len(blob),
            compress_seconds=compress_seconds,
            decompress_seconds=decompress_seconds,
            template_count=len(parser.templates),
        )
