"""Log-compression substrate: template parser and the LogReducer-style codec.

* :class:`repro.logs.parser.LogParser` — fixed-depth prefix-tree template
  parser (the Drain/Logzip-style parser LogReducer depends on).
* :class:`repro.logs.logreducer.LogReducerCodec` — parser-based whole-file log
  compressor with column-wise numeric delta encoding and an LZMA backend
  (the Table 5 baseline).
"""

from repro.logs.logreducer import LogCompressionStats, LogReducerCodec
from repro.logs.parser import LogParser, LogTemplate, ParsedLine, PARAMETER_TOKEN

__all__ = [
    "LogCompressionStats",
    "LogParser",
    "LogReducerCodec",
    "LogTemplate",
    "PARAMETER_TOKEN",
    "ParsedLine",
]
