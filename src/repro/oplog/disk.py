"""``DiskSink``: the durable log sink (the refactored write-ahead log).

This is where the WAL's file mechanics moved in the operation-log refactor:
:class:`repro.lsm.wal.WriteAheadLog` is now a thin compatibility wrapper over
this sink.  One append-only file of :mod:`repro.oplog.record` envelopes, with
the per-append durability policy the durability suite crash-proves
(docs/ARCHITECTURE.md, "Durability"):

* ``"none"`` — records may sit in Python's userspace buffer; a SIGKILL can
  lose every buffered record.  The throughput baseline.
* ``"flush"`` (default) — every append drains the userspace buffer into the
  kernel, so a **process** crash loses nothing; a machine/power crash can
  still lose the kernel's page cache.
* ``"fsync"`` — every append additionally ``os.fsync``-es the file, so even
  a machine crash loses nothing acknowledged.  ``fsync_interval_bytes > 0``
  relaxes this to group commit: at most that many appended bytes ride
  between fsyncs.

``sync()`` is always the hard barrier (flush + ``os.fsync``) regardless of
mode.  :meth:`DiskSink.reset` truncates the file after the state it protects
has been flushed elsewhere — and, when given the LSN that flushed prefix
reached, writes an ``OP_CHECKPOINT`` record as the fresh file's first entry,
so a reopened shard resumes its sequence instead of re-issuing LSNs.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Iterator, Sequence

from repro.exceptions import StoreError
from repro.ioutil import fsync_directory
from repro.oplog.record import (
    OP_CHECKPOINT,
    OpRecord,
    encode_records,
    iter_records,
)
from repro.oplog.sink import LogSink

#: Accepted per-append durability policies, weakest to strongest.
SYNC_MODES = ("none", "flush", "fsync")


class DiskSink(LogSink):
    """Append-only record log on disk with a configurable durability policy."""

    def __init__(
        self,
        path: str | Path,
        sync_mode: str = "flush",
        fsync_interval_bytes: int = 0,
    ) -> None:
        if sync_mode not in SYNC_MODES:
            raise StoreError(f"unknown sync_mode {sync_mode!r}; choose from {SYNC_MODES}")
        if fsync_interval_bytes < 0:
            raise StoreError("fsync_interval_bytes must be >= 0")
        self.path = Path(path)
        self.sync_mode = sync_mode
        self.fsync_interval_bytes = fsync_interval_bytes
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._unsynced_bytes = 0
        #: fsync barriers taken and their cumulative wall time, for the
        #: ``repro_shard_wal_fsync*`` metrics (process-lifetime, not replayed).
        self.fsyncs = 0
        self.fsync_seconds = 0.0

    # ------------------------------------------------------------------ write

    def append(self, records: Sequence[OpRecord]) -> None:
        """Write a batch of LSN-stamped records with **one** syscall.

        The batch is encoded into a single buffer, written once and
        flushed/fsynced once, so an N-record batch pays one durability
        barrier instead of N.  Each record still carries its own CRC, so a
        torn batch replays as a valid prefix.
        """
        if not records:
            return
        self.append_raw(encode_records(records))

    def append_raw(self, payload: bytes) -> None:
        """Write already-encoded record bytes (the legacy-format write path)."""
        if self._file.closed:
            raise StoreError("write-ahead log is closed")
        self._file.write(payload)
        self._after_write(len(payload))

    def _after_write(self, written_bytes: int) -> None:
        """Apply the ``sync_mode`` durability policy to freshly written bytes."""
        if self.sync_mode == "none":
            return
        self._file.flush()
        if self.sync_mode == "fsync":
            self._unsynced_bytes += written_bytes
            if self.fsync_interval_bytes == 0 or self._unsynced_bytes >= self.fsync_interval_bytes:
                self._fsync()

    def _fsync(self) -> None:
        started = time.perf_counter()
        os.fsync(self._file.fileno())
        self.fsync_seconds += time.perf_counter() - started
        self.fsyncs += 1
        self._unsynced_bytes = 0

    def flush(self) -> None:
        """Drain the userspace buffer into the kernel (survives a process kill)."""
        if not self._file.closed:
            self._file.flush()

    def sync(self) -> None:
        """Hard durability barrier: flush and ``os.fsync`` regardless of mode."""
        if not self._file.closed:
            self._file.flush()
            self._fsync()

    # ------------------------------------------------------------------- read

    def replay(self, start_lsn: int = 0) -> Iterator[OpRecord]:
        """Every intact record, oldest first, as a gap-free LSN prefix.

        Replay stops silently at the first truncated/corrupt entry (torn
        tail) or non-contiguous LSN — see
        :func:`repro.oplog.record.iter_records`.  Legacy pre-LSN records
        come back with synthesised contiguous LSNs starting at
        ``start_lsn + 1``.
        """
        self.flush()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return iter(())
        return iter_records(data, start_lsn=start_lsn)

    # ------------------------------------------------------------ maintenance

    def reset(self, checkpoint_lsn: int = 0) -> None:
        """Truncate the log after the state it protects was flushed elsewhere.

        With ``checkpoint_lsn > 0`` the fresh file immediately receives an
        ``OP_CHECKPOINT`` record carrying that LSN, so recovery resumes the
        shard's sequence past everything the flush made durable — no LSN is
        ever issued twice, even across truncate + reopen.  In ``"fsync"``
        mode the truncation (and checkpoint) is fsynced, file and directory:
        a machine crash right after a flush must not resurrect the pre-flush
        log over the already-published state.
        """
        if not self._file.closed:
            self._file.close()
        self._file = open(self.path, "wb")
        self._unsynced_bytes = 0
        if checkpoint_lsn > 0:
            self._file.write(
                encode_records([OpRecord(lsn=checkpoint_lsn, op=OP_CHECKPOINT, key="")])
            )
            if self.sync_mode != "none":
                self._file.flush()
        if self.sync_mode == "fsync":
            self._fsync()
        self._file.close()
        self._file = open(self.path, "ab")
        self._unsynced_bytes = 0
        if self.sync_mode == "fsync":
            fsync_directory(self.path.parent)

    def close(self) -> None:
        """Close the underlying file (fsyncing first in ``"fsync"`` mode)."""
        if not self._file.closed:
            self._file.flush()
            if self.sync_mode == "fsync":
                self._fsync()
            self._file.close()

    @property
    def size_bytes(self) -> int:
        """Current size of the log file."""
        self.flush()
        return self.path.stat().st_size if self.path.exists() else 0
