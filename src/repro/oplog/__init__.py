"""The operation log: every mutation in the system as one LSN-stamped stream.

This package is the replication-ready spine the ROADMAP's replication item
builds on.  Each shard owns an :class:`OperationLog` that assigns a per-shard
monotone **log sequence number** to every mutation, wraps it in an
:class:`OpRecord` (op tag, key, value bytes, codec epoch), and fans it to
pluggable :class:`LogSink`\\ s:

* :class:`DiskSink` — the durable sink; the LSM write-ahead log is now a
  thin wrapper over it, and its files replay as a gap-free LSN prefix with
  the torn-tail contract (pre-LSN files replay with synthesised LSNs);
* :class:`SubscriberSink` — a bounded in-memory ring with writer-side
  backpressure and lag accounting; the tap replication reads from;
* :class:`FollowerStore` — the first consumer: tails a subscription and
  converges byte-exactly with the primary (crash-tested).

See docs/ARCHITECTURE.md ("Operation log") and docs/FORMATS.md §9/§8 for the
record and snapshot layouts.
"""

from repro.oplog.disk import SYNC_MODES, DiskSink
from repro.oplog.follower import FollowerStore
from repro.oplog.log import OperationLog, Sequencer
from repro.oplog.record import (
    LSN_FLAG,
    OP_CHECKPOINT,
    OP_DELETE,
    OP_PUT,
    OpRecord,
    append_record,
    encode_legacy_record,
    encode_record,
    encode_records,
    iter_records,
)
from repro.oplog.sink import LogSink, SubscriberSink, Subscription

__all__ = [
    "DiskSink",
    "FollowerStore",
    "LSN_FLAG",
    "LogSink",
    "OP_CHECKPOINT",
    "OP_DELETE",
    "OP_PUT",
    "OpRecord",
    "OperationLog",
    "SYNC_MODES",
    "Sequencer",
    "SubscriberSink",
    "Subscription",
    "append_record",
    "encode_legacy_record",
    "encode_record",
    "encode_records",
    "iter_records",
]
