"""The operation-log record and its shared binary codec.

Every mutation in the system — an LSM ``put``/``delete``, a TierBase ``SET``,
a batched ``put_many`` — is one :class:`OpRecord`: an operation tag, a key,
the value *bytes* the layer wants replayed (raw UTF-8 for the LSM engine,
the epoch-stamped compressed payload for TierBase), the codec epoch the
payload was written under, and the per-shard **log sequence number** (LSN)
assigned by the shard's :class:`~repro.oplog.log.Sequencer`.

This module is the one place records are encoded and decoded.  The on-disk
envelope is the WAL's historical torn-tail contract (docs/FORMATS.md §9)::

    record := uvarint(len(body))  crc32(body) u32-be  body

and the body comes in two shapes, discriminated by the high bit of the first
byte:

* **legacy** (pre-LSN WAL files): ``op u8 (1|2), uvarint(len(key)) key,
  uvarint(len(value)) value`` — no LSN, no epoch.  Decoding *synthesises*
  contiguous LSNs (previous + 1), so an old log replays as a valid prefix of
  the new contract;
* **LSN-stamped**: ``tag u8 (op | 0x80), uvarint(lsn), uvarint(epoch),
  uvarint(len(key)) key, uvarint(len(value)) value``.

Replay (:func:`iter_records`) stops at the first truncated or corrupt entry
(the torn tail of a crash) **and** at the first non-contiguous LSN, so the
records it yields are always a gap-free prefix of the shard's history —
the invariant the durability suite's SIGKILL mode asserts.  A
:data:`OP_CHECKPOINT` record is the one allowed forward jump: the WAL writes
it as the first record of a freshly truncated log, carrying the last LSN the
flushed-away prefix reached, so a reopened shard never re-issues an LSN.

Encoding builds each record in a single buffer and feeds ``zlib.crc32`` the
``bytearray`` directly — the previous WAL encoder copied the body once for
the checksum and again for the return value (two allocations per record on
the hot write path; the ``wal_record_encode`` bench row measures the fix).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.entropy.varint import decode_uvarint, encode_uvarint

#: Operation tags.  PUT/DELETE are the two mutations; CHECKPOINT is a
#: control record carrying the LSN a truncated WAL prefix had reached.
OP_PUT = 1
OP_DELETE = 2
OP_CHECKPOINT = 3

#: High bit of the body's first byte: set on LSN-stamped bodies, clear on
#: legacy (pre-LSN) bodies, whose first byte is the bare op tag.
LSN_FLAG = 0x80

_MUTATION_OPS = (OP_PUT, OP_DELETE)
_ALL_OPS = (OP_PUT, OP_DELETE, OP_CHECKPOINT)


@dataclass(frozen=True)
class OpRecord:
    """One logged mutation: what happened, to which key, at which LSN."""

    #: per-shard monotone log sequence number (1-based; 0 = never assigned).
    lsn: int
    #: :data:`OP_PUT`, :data:`OP_DELETE` or :data:`OP_CHECKPOINT`.
    op: int
    #: the mutated key (empty for checkpoints).
    key: str
    #: the value bytes to replay — raw UTF-8 for the LSM engine, the
    #: epoch-stamped compressed payload for TierBase, empty for deletes.
    value: bytes = b""
    #: codec model epoch the value was written under (0 = unversioned).
    epoch: int = 0

    def checkpoint(self) -> bool:
        """Whether this is a control record rather than a mutation."""
        return self.op == OP_CHECKPOINT


def append_record(buffer: bytearray, record: OpRecord) -> None:
    """Append ``record``'s LSN-stamped wire form to ``buffer`` (no copies)."""
    key_bytes = record.key.encode("utf-8")
    body = bytearray()
    body.append(record.op | LSN_FLAG)
    body += encode_uvarint(record.lsn)
    body += encode_uvarint(record.epoch)
    body += encode_uvarint(len(key_bytes))
    body += key_bytes
    body += encode_uvarint(len(record.value))
    body += record.value
    buffer += encode_uvarint(len(body))
    buffer += zlib.crc32(body).to_bytes(4, "big")
    buffer += body


def encode_record(record: OpRecord) -> bytes:
    """One record's complete wire form (envelope + LSN-stamped body)."""
    buffer = bytearray()
    append_record(buffer, record)
    return bytes(buffer)


def encode_records(records: Sequence[OpRecord]) -> bytes:
    """A batch of records as one contiguous buffer (one write syscall)."""
    buffer = bytearray()
    for record in records:
        append_record(buffer, record)
    return bytes(buffer)


def encode_legacy_record(op: int, key: str, value: str) -> bytes:
    """A pre-LSN record, byte-identical to what old WALs contain.

    Kept for the legacy ``WriteAheadLog.append_put``-style API (and the
    mixed-version tests): these records carry no LSN and replay with
    synthesised ones.
    """
    key_bytes = key.encode("utf-8")
    value_bytes = value.encode("utf-8")
    body = bytearray()
    body.append(op)
    body += encode_uvarint(len(key_bytes))
    body += key_bytes
    body += encode_uvarint(len(value_bytes))
    body += value_bytes
    return bytes(
        encode_uvarint(len(body)) + zlib.crc32(body).to_bytes(4, "big") + body
    )


def _decode_body(body: bytes, previous_lsn: int) -> OpRecord | None:
    """Decode one CRC-verified body; ``None`` means "treat as torn tail"."""
    try:
        tag = body[0]
        if tag & LSN_FLAG:
            op = tag & ~LSN_FLAG
            if op not in _ALL_OPS:
                return None
            lsn, offset = decode_uvarint(body, 1)
            epoch, offset = decode_uvarint(body, offset)
        else:
            op = tag
            if op not in _MUTATION_OPS:
                return None
            lsn = previous_lsn + 1
            epoch = 0
            offset = 1
        key_length, offset = decode_uvarint(body, offset)
        key = body[offset : offset + key_length].decode("utf-8")
        offset += key_length
        value_length, offset = decode_uvarint(body, offset)
        value = bytes(body[offset : offset + value_length])
        if len(value) != value_length or offset + value_length != len(body):
            return None
    except Exception:
        return None
    return OpRecord(lsn=lsn, op=op, key=key, value=value, epoch=epoch)


def iter_records(data: bytes, start_lsn: int = 0) -> Iterator[OpRecord]:
    """Yield every intact record in ``data``, oldest first, as a gap-free prefix.

    Iteration stops silently at the first truncated or corrupt entry (the
    expected torn tail of a crashed writer) and at the first LSN that is not
    exactly ``previous + 1`` — a gap means records upstream of it cannot be
    trusted, so nothing after it is yielded.  Checkpoint records may jump
    the LSN forward (never backward); legacy bodies synthesise ``previous +
    1`` and are therefore always contiguous.
    """
    offset = 0
    total = len(data)
    previous_lsn = start_lsn
    while offset < total:
        try:
            body_length, body_start = decode_uvarint(data, offset)
        except Exception:
            return
        checksum_end = body_start + 4
        body_end = checksum_end + body_length
        if body_length == 0 or body_end > total:
            return
        expected_checksum = int.from_bytes(data[body_start:checksum_end], "big")
        body = data[checksum_end:body_end]
        if zlib.crc32(body) != expected_checksum:
            return
        record = _decode_body(body, previous_lsn)
        if record is None:
            return
        if record.op == OP_CHECKPOINT:
            if record.lsn < previous_lsn:
                return
        elif record.lsn != previous_lsn + 1:
            return
        previous_lsn = record.lsn
        yield record
        offset = body_end
