"""Log sinks: where sequenced :class:`~repro.oplog.record.OpRecord`\\ s go.

A sink receives records strictly in LSN order (the
:class:`~repro.oplog.log.OperationLog` holds its lock across the sequencer
and every attached sink, so no two appends can interleave).  Two sinks ship:

* :class:`~repro.oplog.disk.DiskSink` — the durable one, the refactored WAL;
* :class:`SubscriberSink` (here) — a bounded in-memory ring that fans records
  out to any number of :class:`Subscription` cursors.  This is the
  replication tap: a follower (next PR: a socket) subscribes, polls, and
  applies.

Backpressure and lag: the ring holds at most ``capacity`` records.  When an
append would evict a record some subscriber has not read yet, the append
first **blocks** for up to ``block_seconds`` waiting for the laggard to
drain (the writer-side backpressure knob); if the laggard still has not
caught up, the oldest records are dropped and the subscriber is *overrun* —
its next ``poll`` raises a typed
:class:`~repro.exceptions.SubscriberLagError` telling it how many records it
missed, because silently skipping mutations would desynchronise a replica
forever.  ``max_lag()`` reports the worst subscriber's backlog for the
``repro_oplog_subscriber_lag_records`` gauge.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from typing import Sequence

from repro.exceptions import OplogError, SubscriberLagError
from repro.oplog.record import OpRecord


class LogSink(ABC):
    """Destination for sequenced operation records."""

    @abstractmethod
    def append(self, records: Sequence[OpRecord]) -> None:
        """Accept a batch of records, already in LSN order."""

    def flush(self) -> None:
        """Make accepted records visible/durable (sink-specific; often a no-op)."""

    def close(self) -> None:
        """Release the sink's resources; further appends fail."""


class Subscription:
    """One reader's cursor into a :class:`SubscriberSink` ring."""

    def __init__(self, sink: "SubscriberSink", position: int) -> None:
        self._sink = sink
        self._position = position
        self._closed = False

    @property
    def lag(self) -> int:
        """Records appended to the sink that this cursor has not read yet."""
        with self._sink._lock:
            return self._sink._end - self._position

    @property
    def position(self) -> int:
        """Absolute stream position (count of records ever read or skipped)."""
        return self._position

    def poll(
        self, max_records: int | None = None, timeout: float = 0.0
    ) -> list[OpRecord]:
        """Next unread records, oldest first (empty when caught up).

        Blocks up to ``timeout`` seconds waiting for the first record.
        Raises :class:`SubscriberLagError` if the writer overran this cursor
        (records were evicted unread); the cursor is then resynchronised to
        the oldest record still in the ring, so a caller that can tolerate
        the gap — or re-seeds from a snapshot — may keep polling.
        """
        if self._closed:
            raise OplogError("subscription is closed")
        deadline = time.monotonic() + timeout if timeout > 0 else None
        with self._sink._readable:
            if self._position < self._sink._start:
                missed = self._sink._start - self._position
                self._position = self._sink._start
                raise SubscriberLagError(
                    f"subscriber overrun: {missed} record(s) evicted unread "
                    f"(ring capacity {self._sink.capacity}); resync required",
                    missed=missed,
                )
            while self._position >= self._sink._end:
                if self._sink._closed:
                    return []
                if deadline is None:
                    return []
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._sink._readable.wait(remaining)
            first = self._position - self._sink._start
            available = self._sink._end - self._position
            count = available if max_records is None else min(available, max_records)
            ring = self._sink._ring
            records = [ring[first + index] for index in range(count)]
            self._position += count
            self._sink._drained.notify_all()
            return records

    def close(self) -> None:
        """Detach from the sink (the writer stops waiting for this cursor)."""
        if not self._closed:
            self._closed = True
            self._sink._drop_subscription(self)


class SubscriberSink(LogSink):
    """Bounded in-memory ring of records with per-subscriber cursors."""

    def __init__(self, capacity: int = 1024, block_seconds: float = 0.0) -> None:
        if capacity < 1:
            raise OplogError("subscriber ring capacity must be positive")
        if block_seconds < 0:
            raise OplogError("block_seconds must be >= 0")
        self.capacity = capacity
        self.block_seconds = block_seconds
        self._ring: deque[OpRecord] = deque()
        #: absolute position of ``_ring[0]`` / one past the newest record.
        self._start = 0
        self._end = 0
        self._lock = threading.Lock()
        self._readable = threading.Condition(self._lock)
        self._drained = threading.Condition(self._lock)
        self._subscriptions: list[Subscription] = []
        #: total records ever evicted while some subscriber had not read them.
        self.overrun_records = 0
        self._closed = False

    # ---------------------------------------------------------------- writing

    def append(self, records: Sequence[OpRecord]) -> None:
        if not records:
            return
        with self._readable:
            if self._closed:
                raise OplogError("subscriber sink is closed")
            self._ring.extend(records)
            self._end += len(records)
            self._readable.notify_all()
            overflow = len(self._ring) - self.capacity
            if overflow > 0 and self.block_seconds > 0 and self._subscriptions:
                # Writer-side backpressure: give laggards a bounded chance to
                # drain before anything unread is evicted.
                deadline = time.monotonic() + self.block_seconds
                while (
                    len(self._ring) > self.capacity
                    and self._min_position() < self._start + (len(self._ring) - self.capacity)
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drained.wait(remaining)
            while len(self._ring) > self.capacity:
                self._ring.popleft()
                self._start += 1
                if self._min_position() < self._start:
                    self.overrun_records += 1

    def _min_position(self) -> int:
        """Slowest live cursor (``_end`` when nobody subscribes).  Lock held."""
        if not self._subscriptions:
            return self._end
        return min(sub._position for sub in self._subscriptions)

    # ---------------------------------------------------------------- reading

    def subscribe(self, from_start: bool = True) -> Subscription:
        """New cursor; at the oldest retained record, or the live tail."""
        with self._lock:
            if self._closed:
                raise OplogError("subscriber sink is closed")
            position = self._start if from_start else self._end
            subscription = Subscription(self, position)
            self._subscriptions.append(subscription)
            return subscription

    def _drop_subscription(self, subscription: Subscription) -> None:
        with self._readable:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)
            self._drained.notify_all()

    # ----------------------------------------------------------------- status

    def max_lag(self) -> int:
        """Worst subscriber backlog, in records (0 with no subscribers)."""
        with self._lock:
            if not self._subscriptions:
                return 0
            return max(self._end - sub._position for sub in self._subscriptions)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def __len__(self) -> int:
        """Records currently retained in the ring."""
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        """Wake every blocked poller; retained records stay readable."""
        with self._readable:
            self._closed = True
            self._readable.notify_all()
            self._drained.notify_all()
