"""``FollowerStore``: the operation log's first consumer — a replica in embryo.

A follower is deliberately dumb: a key → value-bytes dictionary that applies
:class:`~repro.oplog.record.OpRecord`\\ s in LSN order and remembers how far
it got.  It never compresses, never trains, never interprets payloads — the
PR-3 versioned-epoch design means the model epoch travels *with* the bytes,
so a follower fed TierBase records holds the exact epoch-stamped compressed
payloads the primary holds, byte for byte, without ever seeing a model.
Replication in the next PR is "put a socket between the
:class:`~repro.oplog.sink.SubscriberSink` and this class".

Apply is idempotent (records at or below ``last_applied`` are skipped), so
re-feeding an overlapping stream — a WAL replay after a crash, a retried
batch — cannot double-apply; checkpoints just advance the watermark.  The
convergence tests assert :meth:`diverges_from` is empty against the primary
under concurrent writers, SIGKILL crash injection, and interleaved
put/delete/put_many/retrain.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.oplog.record import OP_CHECKPOINT, OP_DELETE, OP_PUT, OpRecord
from repro.oplog.sink import Subscription


class FollowerStore:
    """Applies an LSN-ordered record stream; converges with the primary."""

    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}
        self._epochs: dict[str, int] = {}
        #: highest LSN applied (or checkpointed past); 0 = nothing yet.
        self.last_applied = 0
        #: records skipped as already-applied duplicates (idempotence hits).
        self.duplicates = 0

    # --------------------------------------------------------------- applying

    def apply(self, record: OpRecord) -> bool:
        """Apply one record; returns whether it changed the watermark."""
        if record.lsn <= self.last_applied:
            self.duplicates += 1
            return False
        if record.op == OP_PUT:
            self._data[record.key] = record.value
            self._epochs[record.key] = record.epoch
        elif record.op == OP_DELETE:
            self._data.pop(record.key, None)
            self._epochs.pop(record.key, None)
        elif record.op != OP_CHECKPOINT:
            raise ValueError(f"unknown operation tag {record.op}")
        self.last_applied = record.lsn
        return True

    def apply_many(self, records: Sequence[OpRecord]) -> int:
        """Apply a batch in order; returns how many advanced the watermark."""
        applied = 0
        for record in records:
            if self.apply(record):
                applied += 1
        return applied

    def catch_up(
        self,
        subscription: Subscription,
        timeout: float = 0.0,
        max_records: int | None = None,
    ) -> int:
        """Drain a subscription until it runs dry; returns records applied.

        Polls in batches (waiting up to ``timeout`` for the first batch
        only).  A :class:`~repro.exceptions.SubscriberLagError` from an
        overrun propagates — a follower that missed records must resync
        from a snapshot, not silently continue.
        """
        applied = 0
        wait = timeout
        while True:
            records = subscription.poll(max_records=max_records, timeout=wait)
            if not records:
                return applied
            applied += self.apply_many(records)
            wait = 0.0

    # ---------------------------------------------------------------- reading

    def get_bytes(self, key: str) -> bytes | None:
        """The replicated value bytes for ``key`` (``None`` when absent)."""
        return self._data.get(key)

    def epoch_of(self, key: str) -> int | None:
        """The codec epoch stamped on ``key``'s record (``None`` when absent)."""
        return self._epochs.get(key)

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def items(self) -> Iterator[tuple[str, bytes]]:
        """``(key, value_bytes)`` in key order."""
        for key in sorted(self._data):
            yield key, self._data[key]

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # ------------------------------------------------------------ convergence

    def diverges_from(self, expected: Mapping[str, bytes]) -> list[str]:
        """Keys whose replicated bytes differ from ``expected`` (byte-exact).

        Empty list = converged.  ``expected`` is the primary's own payload
        map (TierBase's compressed dict, or the LSM engine's live entries
        encoded to bytes), so equality here is the replication acceptance
        bar: same keys, same bytes.
        """
        problems = [
            key
            for key in self._data
            if key not in expected or self._data[key] != expected[key]
        ]
        problems.extend(key for key in expected if key not in self._data)
        return sorted(set(problems))
