"""Per-shard LSN sequencing and the operation log that fans records to sinks.

The :class:`OperationLog` is the single choke point every mutation of a shard
passes through: it assigns the next log sequence number, builds the
:class:`~repro.oplog.record.OpRecord`, and hands it to every attached
:class:`~repro.oplog.sink.LogSink` — the durable
:class:`~repro.oplog.disk.DiskSink` (WAL) and any number of
:class:`~repro.oplog.sink.SubscriberSink` replication taps — **while holding
one lock**, so every sink observes the exact same gap-free LSN order.  That
ordering guarantee is what lets a follower apply the stream blindly and
converge byte-exactly with the primary.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.oplog.record import OpRecord
from repro.oplog.sink import LogSink, SubscriberSink


class Sequencer:
    """Thread-safe monotone LSN counter for one shard (1-based)."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("sequencer start must be >= 0")
        self._last = start
        self._lock = threading.Lock()

    @property
    def last(self) -> int:
        """The most recently issued (or advanced-to) LSN; 0 = none yet."""
        with self._lock:
            return self._last

    def next(self) -> int:
        """Issue the next LSN."""
        with self._lock:
            self._last += 1
            return self._last

    def next_block(self, count: int) -> range:
        """Issue ``count`` consecutive LSNs at once (batched appends)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        with self._lock:
            first = self._last + 1
            self._last += count
            return range(first, self._last + 1)

    def advance_to(self, lsn: int) -> None:
        """Fast-forward past ``lsn`` (recovery); never moves backward."""
        with self._lock:
            if lsn > self._last:
                self._last = lsn


class OperationLog:
    """One shard's mutation spine: sequencer + attached sinks, one lock."""

    def __init__(self, sinks: Sequence[LogSink] = (), start_lsn: int = 0) -> None:
        self._sequencer = Sequencer(start_lsn)
        self._sinks: list[LogSink] = list(sinks)
        self._lock = threading.Lock()

    # ------------------------------------------------------------- sequencing

    @property
    def last_lsn(self) -> int:
        """The newest LSN this log has issued (0 before the first append)."""
        return self._sequencer.last

    def advance_to(self, lsn: int) -> None:
        """Resume the sequence past ``lsn`` (recovery / snapshot load)."""
        self._sequencer.advance_to(lsn)

    # --------------------------------------------------------------- appending

    def append(self, op: int, key: str, value: bytes = b"", epoch: int = 0) -> OpRecord:
        """Sequence one mutation and deliver it to every sink, in order."""
        with self._lock:
            record = OpRecord(
                lsn=self._sequencer.next(), op=op, key=key, value=value, epoch=epoch
            )
            for sink in self._sinks:
                sink.append((record,))
            return record

    def append_many(
        self, operations: Sequence[tuple[int, str, bytes, int]]
    ) -> list[OpRecord]:
        """Sequence a batch of ``(op, key, value, epoch)`` with consecutive LSNs.

        The whole batch is delivered to each sink in one call, so the durable
        sink pays a single write + durability barrier for N records.
        """
        if not operations:
            return []
        with self._lock:
            lsns = self._sequencer.next_block(len(operations))
            records = [
                OpRecord(lsn=lsn, op=op, key=key, value=value, epoch=epoch)
                for lsn, (op, key, value, epoch) in zip(lsns, operations)
            ]
            for sink in self._sinks:
                sink.append(records)
            return records

    # ------------------------------------------------------------------ sinks

    def attach(self, sink: LogSink) -> LogSink:
        """Add a sink; it sees every append from this point on."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def detach(self, sink: LogSink) -> None:
        """Remove a sink (a no-op if it was never attached)."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[LogSink, ...]:
        with self._lock:
            return tuple(self._sinks)

    def subscriber_lag(self) -> int:
        """Worst subscriber backlog across attached subscriber sinks."""
        lag = 0
        for sink in self.sinks:
            if isinstance(sink, SubscriberSink):
                lag = max(lag, sink.max_lag())
        return lag
