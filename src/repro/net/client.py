"""Sync and async ``RKV1`` clients for the :mod:`repro.net` KV server.

:class:`KVClient` is the synchronous client: a small LIFO connection pool
(sockets are created lazily, reused, and discarded on any transport error), a
string-typed API mirroring :class:`~repro.service.KVService`
(``get``/``set``/``delete``/``mget``/``mset``/``ping``/``stats``), and a
:class:`Pipeline` that sends many frames in one write and reads the responses
back in order — one round trip for ``depth`` requests, the client half of the
server's pipelining contract.

:class:`AsyncKVClient` is the asyncio variant over one stream pair; a lock
serialises frame writes while still allowing a batch of frames per round trip
(:meth:`AsyncKVClient.execute`).

Failures are typed:

* transport problems (refused, reset, closed mid-frame) raise
  :class:`~repro.exceptions.NetError` (mid-frame truncation raises its
  subclass :class:`~repro.exceptions.ProtocolError`);
* a server-relayed failure raises a :class:`~repro.exceptions.RemoteError`
  that *also* subclasses the original exception type when the kind names a
  known :mod:`repro.exceptions` class — ``except ModelEpochError`` (or
  ``ServiceError``, …) catches the same failure locally and across the wire.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import AsyncIterator, Callable, Iterator, Sequence

from repro import exceptions as _exceptions
from repro.exceptions import NetError, ProtocolError, RemoteError, ReproError
from repro.net.protocol import (
    DEFAULT_MAX_BODY,
    CountResponse,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    Message,
    MetricsRequest,
    MetricsResponse,
    MGetRequest,
    MSetRequest,
    MultiKeyValueResponse,
    MultiValueResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ScanRequest,
    SetRequest,
    StatsRequest,
    StatsResponse,
    ValueResponse,
    encode_frame,
)

_READ_CHUNK = 64 * 1024

#: Cache of dynamically-built RemoteError subclasses, keyed by kind.
_REMOTE_TYPES: dict[str, type[RemoteError]] = {}
_REMOTE_TYPES_LOCK = threading.Lock()


def remote_error(kind: str, message: str) -> RemoteError:
    """Build the typed exception for a server-relayed error.

    When ``kind`` names a :class:`~repro.exceptions.ReproError` subclass, the
    returned error inherits **both** :class:`RemoteError` and that class, so
    existing ``except`` clauses keep matching across the wire.
    """
    with _REMOTE_TYPES_LOCK:
        error_type = _REMOTE_TYPES.get(kind)
        if error_type is None:
            base = getattr(_exceptions, kind, None)
            if (
                isinstance(base, type)
                and issubclass(base, ReproError)
                and not issubclass(base, RemoteError)
            ):
                error_type = type(f"Remote{kind}", (RemoteError, base), {})
            else:
                error_type = RemoteError
            _REMOTE_TYPES[kind] = error_type
    return error_type(kind, message)


def _expect(response: Message, expected: type[Message]) -> Message:
    if isinstance(response, ErrorResponse):
        raise remote_error(response.kind, response.message)
    if not isinstance(response, expected):
        raise NetError(
            f"expected {expected.wire_name} response, got {response.wire_name}"
        )
    return response


def _encode_text(value: str, what: str) -> bytes:
    if not isinstance(value, str):
        raise NetError(f"{what} must be str, got {type(value).__name__}")
    return value.encode("utf-8")


def _decode_optional(value: bytes | None) -> str | None:
    return None if value is None else value.decode("utf-8")


# -------------------------------------------------------------- sync transport


class _Connection:
    """One pooled socket with its own incremental decoder."""

    def __init__(self, host: str, port: int, timeout: float, max_body: int) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder(max_body=max_body)
        self.pending: list[Message] = []

    def send(self, payload: bytes) -> None:
        try:
            self.sock.sendall(payload)
        except OSError as error:
            raise NetError(f"send failed: {error}") from error

    def receive(self) -> Message:
        while not self.pending:
            try:
                data = self.sock.recv(_READ_CHUNK)
            except OSError as error:
                # Timeouts, resets, broken pipes: all typed NetError so both
                # 'except NetError' callers and the CLI's one-line error
                # contract hold on every transport failure, not just connect.
                raise NetError(f"receive failed: {error}") from error
            if not data:
                self.decoder.eof()  # raises ProtocolError on a partial frame
                raise NetError("connection closed by server")
            self.pending.extend(self.decoder.feed(data))
        return self.pending.pop(0)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class KVClient:
    """Synchronous pooled client for a ``repro serve`` endpoint.

    >>> with KVClient("127.0.0.1", 9100) as client:   # doctest: +SKIP
    ...     client.set("k", "v")
    ...     assert client.get("k") == "v"
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9100,
        pool_size: int = 2,
        timeout: float = 30.0,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        if pool_size < 1:
            raise NetError("pool_size must be at least 1")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.timeout = timeout
        self.max_body = max_body
        self._idle: list[_Connection] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------- pool

    def _acquire(self) -> _Connection:
        if self._closed:
            raise NetError("client is closed")
        with self._lock:
            if self._idle:
                return self._idle.pop()
        try:
            return _Connection(self.host, self.port, self.timeout, self.max_body)
        except OSError as error:
            raise NetError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error

    def _release(self, connection: _Connection, healthy: bool) -> None:
        if not healthy or connection.pending or connection.decoder.buffered:
            connection.close()
            return
        with self._lock:
            if self._closed or len(self._idle) >= self.pool_size:
                connection.close()
            else:
                self._idle.append(connection)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "KVClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- requests

    def _roundtrip(self, requests: Sequence[Message]) -> list[Message]:
        """Send every frame in one write; read the responses back in order."""
        connection = self._acquire()
        try:
            connection.send(b"".join(encode_frame(request) for request in requests))
            responses = [connection.receive() for _ in requests]
        except (OSError, NetError):
            self._release(connection, healthy=False)
            raise
        self._release(connection, healthy=True)
        return responses

    def _request(self, request: Message, expected: type[Message]) -> Message:
        return _expect(self._roundtrip([request])[0], expected)

    # --------------------------------------------------------------------- api

    def ping(self) -> bool:
        self._request(PingRequest(), PongResponse)
        return True

    def get(self, key: str) -> str | None:
        response = self._request(GetRequest(key=_encode_text(key, "key")), ValueResponse)
        return _decode_optional(response.value)

    def set(self, key: str, value: str) -> None:
        self._request(
            SetRequest(key=_encode_text(key, "key"), value=_encode_text(value, "value")),
            OkResponse,
        )

    def delete(self, key: str) -> bool:
        response = self._request(
            DeleteRequest(key=_encode_text(key, "key")), CountResponse
        )
        return response.count > 0

    def mget(self, keys: Sequence[str]) -> list[str | None]:
        if not keys:
            return []
        response = self._request(
            MGetRequest(keys=tuple(_encode_text(key, "key") for key in keys)),
            MultiValueResponse,
        )
        if len(response.values) != len(keys):
            raise NetError(
                f"MGET answered {len(response.values)} values for {len(keys)} keys"
            )
        return [_decode_optional(value) for value in response.values]

    def mset(self, items: Sequence[tuple[str, str]]) -> None:
        if not items:
            return
        self._request(
            MSetRequest(
                items=tuple(
                    (_encode_text(key, "key"), _encode_text(value, "value"))
                    for key, value in items
                )
            ),
            OkResponse,
        )

    def stats(self) -> dict:
        response = self._request(StatsRequest(), StatsResponse)
        return json.loads(response.payload.decode("utf-8"))

    def metrics(self) -> str:
        """Prometheus exposition text over the wire (no HTTP sidecar needed)."""
        response = self._request(MetricsRequest(), MetricsResponse)
        return response.payload.decode("utf-8")

    def scan(
        self, start: str | None = None, end: str | None = None, limit: int = 0
    ) -> Iterator[tuple[str, str]]:
        """Range scan: ``(key, value)`` pairs with ``start <= key < end`` in key order.

        Streams the server's chunked MKVALUE response: pairs are yielded as
        each chunk arrives, so a large range never needs to fit in client
        memory at once.  ``limit == 0`` means unlimited (the server may still
        refuse that under its batch-item cap).  The scan owns one pooled
        connection until the final chunk; abandoning the iterator early
        discards that connection rather than resynchronising the stream.
        """
        request = ScanRequest(
            start=None if start is None else _encode_text(start, "start bound"),
            end=None if end is None else _encode_text(end, "end bound"),
            limit=limit,
        )
        connection = self._acquire()
        completed = False
        try:
            connection.send(encode_frame(request))
            while True:
                response = _expect(connection.receive(), MultiKeyValueResponse)
                for key, value in response.pairs:
                    yield key.decode("utf-8"), value.decode("utf-8")
                if response.final:
                    completed = True
                    return
        finally:
            self._release(connection, healthy=completed)

    def pipeline(self) -> "Pipeline":
        """Queue many operations locally, then :meth:`Pipeline.execute` them
        in a single round trip."""
        return Pipeline(self)


class Pipeline:
    """Client-side pipelining: N queued requests, one write, N ordered reads.

    Results come back positionally from :meth:`execute`.  A per-operation
    server error does not abort the batch on the wire — every response is
    read (keeping the connection usable) and the first error is raised after
    the batch completes.
    """

    def __init__(self, client: KVClient) -> None:
        self._client = client
        self._requests: list[Message] = []
        self._converters: list[Callable[[Message], object]] = []

    def __len__(self) -> int:
        return len(self._requests)

    def _queue(
        self, request: Message, expected: type[Message], convert: Callable[[Message], object]
    ) -> "Pipeline":
        self._requests.append(request)
        self._converters.append(lambda response: convert(_expect(response, expected)))
        return self

    def ping(self) -> "Pipeline":
        return self._queue(PingRequest(), PongResponse, lambda _: True)

    def get(self, key: str) -> "Pipeline":
        return self._queue(
            GetRequest(key=_encode_text(key, "key")),
            ValueResponse,
            lambda response: _decode_optional(response.value),
        )

    def set(self, key: str, value: str) -> "Pipeline":
        return self._queue(
            SetRequest(key=_encode_text(key, "key"), value=_encode_text(value, "value")),
            OkResponse,
            lambda _: None,
        )

    def delete(self, key: str) -> "Pipeline":
        return self._queue(
            DeleteRequest(key=_encode_text(key, "key")),
            CountResponse,
            lambda response: response.count > 0,
        )

    def execute(self) -> list:
        """Send every queued frame in one round trip; return ordered results."""
        if not self._requests:
            return []
        requests, self._requests = self._requests, []
        converters, self._converters = self._converters, []
        responses = self._client._roundtrip(requests)
        results: list = []
        first_error: Exception | None = None
        for convert, response in zip(converters, responses):
            try:
                results.append(convert(response))
            except (RemoteError, NetError) as error:
                results.append(error)
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results


# ------------------------------------------------------------------ async side


class AsyncKVClient:
    """Asyncio client over one connection; request batches share round trips.

    >>> client = await AsyncKVClient.connect("127.0.0.1", 9100)  # doctest: +SKIP
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_body=max_body)
        self._pending: list[Message] = []
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 9100, max_body: int = DEFAULT_MAX_BODY
    ) -> "AsyncKVClient":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as error:
            raise NetError(f"cannot connect to {host}:{port}: {error}") from error
        return cls(reader, writer, max_body=max_body)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncKVClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _receive(self) -> Message:
        while not self._pending:
            try:
                data = await self._reader.read(_READ_CHUNK)
            except OSError as error:
                raise NetError(f"receive failed: {error}") from error
            if not data:
                self._decoder.eof()
                raise NetError("connection closed by server")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.pop(0)

    async def execute(self, requests: Sequence[Message]) -> list[Message]:
        """Send a batch of frames in one write; responses in request order."""
        async with self._lock:
            try:
                self._writer.write(b"".join(encode_frame(request) for request in requests))
                await self._writer.drain()
            except OSError as error:
                raise NetError(f"send failed: {error}") from error
            return [await self._receive() for _ in requests]

    async def _request(self, request: Message, expected: type[Message]) -> Message:
        return _expect((await self.execute([request]))[0], expected)

    async def ping(self) -> bool:
        await self._request(PingRequest(), PongResponse)
        return True

    async def get(self, key: str) -> str | None:
        response = await self._request(
            GetRequest(key=_encode_text(key, "key")), ValueResponse
        )
        return _decode_optional(response.value)

    async def set(self, key: str, value: str) -> None:
        await self._request(
            SetRequest(key=_encode_text(key, "key"), value=_encode_text(value, "value")),
            OkResponse,
        )

    async def delete(self, key: str) -> bool:
        response = await self._request(
            DeleteRequest(key=_encode_text(key, "key")), CountResponse
        )
        return response.count > 0

    async def mget(self, keys: Sequence[str]) -> list[str | None]:
        if not keys:
            return []
        response = await self._request(
            MGetRequest(keys=tuple(_encode_text(key, "key") for key in keys)),
            MultiValueResponse,
        )
        if len(response.values) != len(keys):
            raise NetError(
                f"MGET answered {len(response.values)} values for {len(keys)} keys"
            )
        return [_decode_optional(value) for value in response.values]

    async def mset(self, items: Sequence[tuple[str, str]]) -> None:
        if not items:
            return
        await self._request(
            MSetRequest(
                items=tuple(
                    (_encode_text(key, "key"), _encode_text(value, "value"))
                    for key, value in items
                )
            ),
            OkResponse,
        )

    async def stats(self) -> dict:
        response = await self._request(StatsRequest(), StatsResponse)
        return json.loads(response.payload.decode("utf-8"))

    async def metrics(self) -> str:
        """Prometheus exposition text over the wire (no HTTP sidecar needed)."""
        response = await self._request(MetricsRequest(), MetricsResponse)
        return response.payload.decode("utf-8")

    async def scan(
        self, start: str | None = None, end: str | None = None, limit: int = 0
    ) -> AsyncIterator[tuple[str, str]]:
        """Range scan: ``(key, value)`` pairs in key order (async iterator).

        The chunked MKVALUE stream is drained while the connection lock is
        held (this client serialises all traffic over one connection), then
        the pairs are yielded — so a slow consumer cannot stall other
        coroutines' requests behind a half-read scan.
        """
        request = ScanRequest(
            start=None if start is None else _encode_text(start, "start bound"),
            end=None if end is None else _encode_text(end, "end bound"),
            limit=limit,
        )
        pairs: list[tuple[bytes, bytes]] = []
        async with self._lock:
            try:
                self._writer.write(encode_frame(request))
                await self._writer.drain()
            except OSError as error:
                raise NetError(f"send failed: {error}") from error
            while True:
                response = _expect(await self._receive(), MultiKeyValueResponse)
                pairs.extend(response.pairs)
                if response.final:
                    break
        for key, value in pairs:
            yield key.decode("utf-8"), value.decode("utf-8")

    async def pipelined_get(self, keys: Sequence[str], depth: int = 8) -> list[str | None]:
        """Fetch ``keys`` as pipelined single-GET frames, ``depth`` per round trip."""
        if depth < 1:
            raise NetError("pipeline depth must be at least 1")
        results: list[str | None] = []
        for start in range(0, len(keys), depth):
            window = keys[start : start + depth]
            responses = await self.execute(
                [GetRequest(key=_encode_text(key, "key")) for key in window]
            )
            for response in responses:
                value = _expect(response, ValueResponse).value
                results.append(_decode_optional(value))
        return results
