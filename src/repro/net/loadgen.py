"""Wire-level workload driver: the network twin of :mod:`repro.service.workload`.

Drives a running ``RKV1`` server from one or more client threads, each with
its own :class:`~repro.net.client.KVClient`, and reports throughput plus
per-round-trip latency percentiles.  Two issue modes cover the two ways the
protocol batches work:

* ``pipeline_depth == 0`` — **server-side batching**: each round trip is one
  ``MGET``/``MSET`` frame of ``batch_size`` keys and the server fans out
  across shards;
* ``pipeline_depth >= 1`` — **client-side pipelining**: each round trip is
  ``pipeline_depth`` single-key GET/SET frames written back-to-back (the
  :class:`~repro.net.client.Pipeline` path), measuring how much of the
  per-request network overhead pipelining amortises — the sweep
  ``benchmarks/bench_net.py`` plots.

Results returned by every round trip are checked against the expectation
that preloaded keys exist, so a run doubles as a correctness soak:
``lost_responses`` / ``corrupt_responses`` must be zero.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from threading import Thread
from typing import Sequence

from repro.exceptions import NetError
from repro.net.client import KVClient
from repro.service.stats import percentile


@dataclass
class WireWorkloadResult:
    """Outcome of one mixed wire workload run."""

    operations: int
    get_operations: int
    set_operations: int
    elapsed_seconds: float
    clients: int
    pipeline_depth: int
    #: GET results that were unexpectedly missing (preloaded key answered None).
    lost_responses: int
    #: GET results whose value did not match what the model says was written.
    corrupt_responses: int
    #: per-operation latencies (seconds), amortised over each round trip.
    latencies: list[float]

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_seconds

    @property
    def p50_ms(self) -> float:
        return percentile(sorted(self.latencies), 0.50) * 1e3

    @property
    def p99_ms(self) -> float:
        return percentile(sorted(self.latencies), 0.99) * 1e3

    def summary_rows(self) -> list[dict]:
        """Rows for :func:`repro.bench.render_table`."""
        return [
            {"metric": "operations", "value": f"{self.operations:,}"},
            {"metric": "clients", "value": self.clients},
            {"metric": "pipeline_depth", "value": self.pipeline_depth or "mget/mset"},
            {"metric": "ops_per_second", "value": f"{self.ops_per_second:,.0f}"},
            {"metric": "op_p50_ms", "value": f"{self.p50_ms:.3f}"},
            {"metric": "op_p99_ms", "value": f"{self.p99_ms:.3f}"},
            {"metric": "lost_responses", "value": self.lost_responses},
            {"metric": "corrupt_responses", "value": self.corrupt_responses},
        ]


def preload_over_wire(
    client: KVClient, values: Sequence[str], key_prefix: str = "kv", batch: int = 64
) -> list[str]:
    """MSET every value over the wire; returns the key list."""
    if not values:
        raise NetError("cannot preload an empty value set")
    keys = [f"{key_prefix}:{index}" for index in range(len(values))]
    for start in range(0, len(keys), batch):
        client.mset(list(zip(keys[start : start + batch], values[start : start + batch])))
    return keys


def run_wire_workload(
    host: str,
    port: int,
    values: Sequence[str],
    operations: int = 2048,
    get_fraction: float = 0.7,
    batch_size: int = 8,
    clients: int = 2,
    pipeline_depth: int = 0,
    seed: int = 2023,
    key_prefix: str = "kv",
    preload: bool = True,
    timeout: float = 30.0,
) -> WireWorkloadResult:
    """Preload (optionally) then drive a mixed GET/SET workload over TCP.

    Writes rotate values across keys deterministically per client, and every
    client tracks the values it wrote so GET responses can be checked: a
    ``None`` for a preloaded key counts as lost, a value that matches neither
    the preload nor any client's rotation for that key counts as corrupt.
    """
    if operations < 1:
        raise NetError("workload needs at least one operation")
    if not 0.0 <= get_fraction <= 1.0:
        raise NetError("get fraction must be within [0, 1]")
    if batch_size < 1 or pipeline_depth < 0:
        raise NetError("batch size must be >= 1 and pipeline depth >= 0")
    if clients < 1:
        raise NetError("workload needs at least one client")

    values = list(values)
    if preload:
        with KVClient(host, port, pool_size=1, timeout=timeout) as loader:
            keys = preload_over_wire(loader, values, key_prefix=key_prefix)
    else:
        keys = [f"{key_prefix}:{index}" for index in range(len(values))]
    # Any value from the rotation set is legal once overwrites race; the
    # correctness bar for mixed concurrent clients is "a value some client
    # actually wrote for a key with the same modulo class", which for the
    # rotation scheme below collapses to membership of the value universe.
    universe = set(values)

    per_client = max(1, operations // clients)
    stats = [[0, 0, 0, 0] for _ in range(clients)]  # gets, sets, lost, corrupt
    latency_lists: list[list[float]] = [[] for _ in range(clients)]
    failures: list[BaseException] = []

    def check_gets(results: Sequence[str | None], client_id: int) -> None:
        for result in results:
            if result is None:
                stats[client_id][2] += 1
            elif result not in universe:
                stats[client_id][3] += 1

    def client_loop(client_id: int) -> None:
        rng = random.Random(f"{seed}:{client_id}")
        try:
            with KVClient(host, port, pool_size=1, timeout=timeout) as client:
                issued = 0
                while issued < per_client:
                    # Round-trip size: the mget/mset batch, or the pipeline
                    # depth (batch_size has no effect in pipeline mode).
                    size = min(
                        pipeline_depth if pipeline_depth else batch_size,
                        per_client - issued,
                    )
                    is_get = rng.random() < get_fraction
                    started = time.perf_counter()
                    if pipeline_depth == 0:
                        if is_get:
                            batch = [keys[rng.randrange(len(keys))] for _ in range(size)]
                            check_gets(client.mget(batch), client_id)
                        else:
                            client.mset(
                                [
                                    (
                                        keys[rng.randrange(len(keys))],
                                        values[rng.randrange(len(values))],
                                    )
                                    for _ in range(size)
                                ]
                            )
                    else:
                        pipe = client.pipeline()
                        for _ in range(size):
                            if is_get:
                                pipe.get(keys[rng.randrange(len(keys))])
                            else:
                                pipe.set(
                                    keys[rng.randrange(len(keys))],
                                    values[rng.randrange(len(values))],
                                )
                        results = pipe.execute()
                        if is_get:
                            check_gets(results, client_id)
                    elapsed = time.perf_counter() - started
                    latency_lists[client_id].extend([elapsed / size] * size)
                    stats[client_id][0 if is_get else 1] += size
                    issued += size
        except BaseException as error:  # noqa: BLE001 — surfaced after join
            failures.append(error)

    started = time.perf_counter()
    if clients == 1:
        client_loop(0)
    else:
        threads = [
            Thread(target=client_loop, args=(client_id,), name=f"kv-loadgen-{client_id}")
            for client_id in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise failures[0]

    return WireWorkloadResult(
        operations=sum(gets + sets for gets, sets, _, _ in stats),
        get_operations=sum(gets for gets, _, _, _ in stats),
        set_operations=sum(sets for _, sets, _, _ in stats),
        elapsed_seconds=elapsed,
        clients=clients,
        pipeline_depth=pipeline_depth,
        lost_responses=sum(lost for _, _, lost, _ in stats),
        corrupt_responses=sum(corrupt for _, _, _, corrupt in stats),
        latencies=[sample for samples in latency_lists for sample in samples],
    )
