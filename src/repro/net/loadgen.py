"""Wire-level workload driver: the network twin of :mod:`repro.service.workload`.

Drives a running ``RKV1`` server from one or more client threads, each with
its own :class:`~repro.net.client.KVClient`, and reports throughput plus
per-round-trip latency percentiles.  Two issue modes cover the two ways the
protocol batches work:

* ``pipeline_depth == 0`` — **server-side batching**: each round trip is one
  ``MGET``/``MSET`` frame of ``batch_size`` keys and the server fans out
  across shards;
* ``pipeline_depth >= 1`` — **client-side pipelining**: each round trip is
  ``pipeline_depth`` single-key GET/SET frames written back-to-back (the
  :class:`~repro.net.client.Pipeline` path), measuring how much of the
  per-request network overhead pipelining amortises — the sweep
  ``benchmarks/bench_net.py`` plots.

Results returned by every round trip are checked against the expectation
that preloaded keys exist, so a run doubles as a correctness soak:
``lost_responses`` / ``corrupt_responses`` must be zero.

:func:`run_wire_workload` is **closed-loop**: each client issues its next
round trip the moment the previous one answers, so a slow server slows the
*offered* load down with it — latency under closed-loop load is flattered
by exactly the queueing it hides (the coordinated-omission problem).
:func:`run_open_loop_workload` is the antidote: operations are released on a
fixed **arrival-rate** timetable (op ``i`` at ``start + i/rate``) regardless
of how fast responses come back, and the result reports *offered* vs
*achieved* rate, per-opcode client-side latency, and the per-opcode tally
that metrics reconciliation tests compare with the server's
``repro_requests_total`` counters.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from threading import Thread
from typing import Callable, Sequence

from repro.exceptions import NetError
from repro.net.client import KVClient
from repro.service.stats import percentile


@dataclass
class WireWorkloadResult:
    """Outcome of one mixed wire workload run."""

    operations: int
    get_operations: int
    set_operations: int
    elapsed_seconds: float
    clients: int
    pipeline_depth: int
    #: GET results that were unexpectedly missing (preloaded key answered None).
    lost_responses: int
    #: GET results whose value did not match what the model says was written.
    corrupt_responses: int
    #: per-operation latencies (seconds), amortised over each round trip.
    latencies: list[float]

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_seconds

    @property
    def p50_ms(self) -> float:
        return percentile(sorted(self.latencies), 0.50) * 1e3

    @property
    def p99_ms(self) -> float:
        return percentile(sorted(self.latencies), 0.99) * 1e3

    def summary_rows(self) -> list[dict]:
        """Rows for :func:`repro.bench.render_table`."""
        return [
            {"metric": "operations", "value": f"{self.operations:,}"},
            {"metric": "clients", "value": self.clients},
            {"metric": "pipeline_depth", "value": self.pipeline_depth or "mget/mset"},
            {"metric": "ops_per_second", "value": f"{self.ops_per_second:,.0f}"},
            {"metric": "op_p50_ms", "value": f"{self.p50_ms:.3f}"},
            {"metric": "op_p99_ms", "value": f"{self.p99_ms:.3f}"},
            {"metric": "lost_responses", "value": self.lost_responses},
            {"metric": "corrupt_responses", "value": self.corrupt_responses},
        ]


def preload_over_wire(
    client: KVClient, values: Sequence[str], key_prefix: str = "kv", batch: int = 64
) -> list[str]:
    """MSET every value over the wire; returns the key list."""
    if not values:
        raise NetError("cannot preload an empty value set")
    keys = [f"{key_prefix}:{index}" for index in range(len(values))]
    for start in range(0, len(keys), batch):
        client.mset(list(zip(keys[start : start + batch], values[start : start + batch])))
    return keys


def run_wire_workload(
    host: str,
    port: int,
    values: Sequence[str],
    operations: int = 2048,
    get_fraction: float = 0.7,
    batch_size: int = 8,
    clients: int = 2,
    pipeline_depth: int = 0,
    seed: int = 2023,
    key_prefix: str = "kv",
    preload: bool = True,
    timeout: float = 30.0,
) -> WireWorkloadResult:
    """Preload (optionally) then drive a mixed GET/SET workload over TCP.

    Writes rotate values across keys deterministically per client, and every
    client tracks the values it wrote so GET responses can be checked: a
    ``None`` for a preloaded key counts as lost, a value that matches neither
    the preload nor any client's rotation for that key counts as corrupt.
    """
    if operations < 1:
        raise NetError("workload needs at least one operation")
    if not 0.0 <= get_fraction <= 1.0:
        raise NetError("get fraction must be within [0, 1]")
    if batch_size < 1 or pipeline_depth < 0:
        raise NetError("batch size must be >= 1 and pipeline depth >= 0")
    if clients < 1:
        raise NetError("workload needs at least one client")

    values = list(values)
    if preload:
        with KVClient(host, port, pool_size=1, timeout=timeout) as loader:
            keys = preload_over_wire(loader, values, key_prefix=key_prefix)
    else:
        keys = [f"{key_prefix}:{index}" for index in range(len(values))]
    # Any value from the rotation set is legal once overwrites race; the
    # correctness bar for mixed concurrent clients is "a value some client
    # actually wrote for a key with the same modulo class", which for the
    # rotation scheme below collapses to membership of the value universe.
    universe = set(values)

    per_client = max(1, operations // clients)
    stats = [[0, 0, 0, 0] for _ in range(clients)]  # gets, sets, lost, corrupt
    latency_lists: list[list[float]] = [[] for _ in range(clients)]
    failures: list[BaseException] = []

    def check_gets(results: Sequence[str | None], client_id: int) -> None:
        for result in results:
            if result is None:
                stats[client_id][2] += 1
            elif result not in universe:
                stats[client_id][3] += 1

    def client_loop(client_id: int) -> None:
        rng = random.Random(f"{seed}:{client_id}")
        try:
            with KVClient(host, port, pool_size=1, timeout=timeout) as client:
                issued = 0
                while issued < per_client:
                    # Round-trip size: the mget/mset batch, or the pipeline
                    # depth (batch_size has no effect in pipeline mode).
                    size = min(
                        pipeline_depth if pipeline_depth else batch_size,
                        per_client - issued,
                    )
                    is_get = rng.random() < get_fraction
                    started = time.perf_counter()
                    if pipeline_depth == 0:
                        if is_get:
                            batch = [keys[rng.randrange(len(keys))] for _ in range(size)]
                            check_gets(client.mget(batch), client_id)
                        else:
                            client.mset(
                                [
                                    (
                                        keys[rng.randrange(len(keys))],
                                        values[rng.randrange(len(values))],
                                    )
                                    for _ in range(size)
                                ]
                            )
                    else:
                        pipe = client.pipeline()
                        for _ in range(size):
                            if is_get:
                                pipe.get(keys[rng.randrange(len(keys))])
                            else:
                                pipe.set(
                                    keys[rng.randrange(len(keys))],
                                    values[rng.randrange(len(values))],
                                )
                        results = pipe.execute()
                        if is_get:
                            check_gets(results, client_id)
                    elapsed = time.perf_counter() - started
                    latency_lists[client_id].extend([elapsed / size] * size)
                    stats[client_id][0 if is_get else 1] += size
                    issued += size
        except BaseException as error:  # noqa: BLE001 — surfaced after join
            failures.append(error)

    started = time.perf_counter()
    if clients == 1:
        client_loop(0)
    else:
        threads = [
            Thread(target=client_loop, args=(client_id,), name=f"kv-loadgen-{client_id}")
            for client_id in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise failures[0]

    return WireWorkloadResult(
        operations=sum(gets + sets for gets, sets, _, _ in stats),
        get_operations=sum(gets for gets, _, _, _ in stats),
        set_operations=sum(sets for _, sets, _, _ in stats),
        elapsed_seconds=elapsed,
        clients=clients,
        pipeline_depth=pipeline_depth,
        lost_responses=sum(lost for _, _, lost, _ in stats),
        corrupt_responses=sum(corrupt for _, _, _, corrupt in stats),
        latencies=[sample for samples in latency_lists for sample in samples],
    )


# ------------------------------------------------------------------- open loop


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop (arrival-rate) wire workload run."""

    #: operations the timetable released (== the requested operation count).
    offered_operations: int
    #: operations that completed with a response (errors excluded).
    completed: int
    #: operations that raised (typed rejections, transport failures).
    errors: int
    elapsed_seconds: float
    #: the arrival rate the timetable targeted (operations/second).
    offered_rate: float
    workers: int
    #: client-side completions per opcode wire name ("GET" / "SET"); the tally
    #: server counters must reconcile against, so errors are *not* counted
    #: here — but rejected requests were still dispatched server-side, which
    #: is why reconciliation runs must be error-free.
    opcode_counts: dict[str, int] = field(default_factory=dict)
    #: MSET frames the preload issued (reconciles ``repro_requests_total{opcode="MSET"}``).
    preload_msets: int = 0
    #: per-opcode client-observed latencies in seconds (queueing included:
    #: an operation released late still measures from its *scheduled* time).
    latencies: dict[str, list[float]] = field(default_factory=dict)
    #: error tallies by exception type name ("RateLimitedError", ...).
    error_kinds: dict[str, int] = field(default_factory=dict)

    @property
    def achieved_rate(self) -> float:
        """Completions per second actually sustained."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def latency_ms(self, opcode: str, fraction: float) -> float:
        """Client-observed latency percentile for ``opcode`` in milliseconds."""
        return percentile(sorted(self.latencies.get(opcode, [])), fraction) * 1e3

    def summary_rows(self) -> list[dict]:
        """Rows for :func:`repro.bench.render_table`."""
        rows = [
            {"metric": "offered_operations", "value": f"{self.offered_operations:,}"},
            {"metric": "completed", "value": f"{self.completed:,}"},
            {"metric": "errors", "value": self.errors},
            {"metric": "workers", "value": self.workers},
            {"metric": "offered_rate", "value": f"{self.offered_rate:,.0f}/s"},
            {"metric": "achieved_rate", "value": f"{self.achieved_rate:,.0f}/s"},
        ]
        for opcode in sorted(self.latencies):
            rows.append(
                {
                    "metric": f"{opcode.lower()}_p50_ms",
                    "value": f"{self.latency_ms(opcode, 0.50):.3f}",
                }
            )
            rows.append(
                {
                    "metric": f"{opcode.lower()}_p99_ms",
                    "value": f"{self.latency_ms(opcode, 0.99):.3f}",
                }
            )
        for kind in sorted(self.error_kinds):
            rows.append({"metric": f"errors[{kind}]", "value": self.error_kinds[kind]})
        return rows


def run_open_loop_workload(
    host: str,
    port: int,
    values: Sequence[str],
    rate: float,
    operations: int = 1024,
    get_fraction: float = 0.7,
    workers: int = 4,
    seed: int = 2023,
    key_prefix: str = "kv",
    preload: bool = True,
    timeout: float = 30.0,
    operation: Callable[[KVClient, random.Random, int], str] | None = None,
) -> OpenLoopResult:
    """Drive single-key GET/SETs on a fixed arrival-rate timetable.

    Operation ``i`` is released at ``start + i / rate`` whether or not earlier
    operations have answered; a worker that falls behind issues late
    operations immediately (and the lateness shows up as latency, measured
    from the *scheduled* instant — the open-loop discipline that makes
    overload visible instead of silently slowing the offered load).  Workers
    pull the next operation index from a shared counter, so the timetable is
    global, not per-worker.  Each operation's kind, key, and value derive from
    a :class:`random.Random` seeded by its index — deterministic regardless of
    which worker runs it.

    ``operation`` swaps the built-in GET/SET mix for a caller-supplied op:
    it receives ``(client, rng, index)``, performs one logical operation, and
    returns the opcode label to tally it under ("GET", "SCAN", "RMW", ...).
    The arrival timetable, per-index determinism, latency-from-scheduled
    accounting, and error tallies all stay identical — this is how the
    :mod:`repro.scenarios` YCSB-style mixes ride the open-loop discipline.
    """
    if rate <= 0:
        raise NetError("open-loop rate must be positive")
    if operations < 1:
        raise NetError("workload needs at least one operation")
    if not 0.0 <= get_fraction <= 1.0:
        raise NetError("get fraction must be within [0, 1]")
    if workers < 1:
        raise NetError("workload needs at least one worker")

    values = list(values)
    preload_msets = 0
    if preload:
        with KVClient(host, port, pool_size=1, timeout=timeout) as loader:
            keys = preload_over_wire(loader, values, key_prefix=key_prefix)
            preload_msets = (len(values) + 63) // 64
    else:
        keys = [f"{key_prefix}:{index}" for index in range(len(values))]

    next_index = [0]
    index_lock = threading.Lock()
    # With a custom operation the opcode labels are the callback's to
    # define; the built-in mix pre-seeds GET/SET so zero-count opcodes
    # still show up in the result.
    seed_opcodes = () if operation is not None else ("GET", "SET")
    counts = [{opcode: 0 for opcode in seed_opcodes} for _ in range(workers)]
    latencies: list[dict[str, list[float]]] = [
        {opcode: [] for opcode in seed_opcodes} for _ in range(workers)
    ]
    errors: list[dict[str, int]] = [{} for _ in range(workers)]
    failures: list[BaseException] = []
    start_time = time.perf_counter()

    def worker_loop(worker_id: int) -> None:
        try:
            with KVClient(host, port, pool_size=1, timeout=timeout) as client:
                while True:
                    with index_lock:
                        index = next_index[0]
                        if index >= operations:
                            return
                        next_index[0] += 1
                    scheduled = start_time + index / rate
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    rng = random.Random(f"{seed}:{index}")
                    try:
                        if operation is not None:
                            opcode = operation(client, rng, index)
                        else:
                            is_get = rng.random() < get_fraction
                            opcode = "GET" if is_get else "SET"
                            key = keys[rng.randrange(len(keys))]
                            if is_get:
                                client.get(key)
                            else:
                                client.set(key, values[rng.randrange(len(values))])
                    except Exception as error:  # noqa: BLE001 — tallied
                        # Server-relayed errors tally under the server-side
                        # exception name ("RateLimitedError"), not the
                        # dynamic Remote* wrapper class.
                        kind = getattr(error, "kind", type(error).__name__)
                        errors[worker_id][kind] = errors[worker_id].get(kind, 0) + 1
                        continue
                    # Latency from the *scheduled* release, not the actual
                    # send: queueing delay is part of what open loop measures.
                    latencies[worker_id].setdefault(opcode, []).append(
                        time.perf_counter() - scheduled
                    )
                    counts[worker_id][opcode] = counts[worker_id].get(opcode, 0) + 1
        except BaseException as error:  # noqa: BLE001 — surfaced after join
            failures.append(error)

    threads = [
        Thread(target=worker_loop, args=(worker_id,), name=f"kv-openloop-{worker_id}")
        for worker_id in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start_time
    if failures:
        raise failures[0]

    opcode_counts: dict[str, int] = {}
    merged_latencies: dict[str, list[float]] = {}
    error_kinds: dict[str, int] = {}
    for worker_id in range(workers):
        for opcode, count in counts[worker_id].items():
            opcode_counts[opcode] = opcode_counts.get(opcode, 0) + count
        for opcode, samples in latencies[worker_id].items():
            merged_latencies.setdefault(opcode, []).extend(samples)
        for kind, count in errors[worker_id].items():
            error_kinds[kind] = error_kinds.get(kind, 0) + count
    completed = sum(opcode_counts.values())
    return OpenLoopResult(
        offered_operations=operations,
        completed=completed,
        errors=sum(error_kinds.values()),
        elapsed_seconds=elapsed,
        offered_rate=rate,
        workers=workers,
        opcode_counts=opcode_counts,
        preload_msets=preload_msets,
        latencies=merged_latencies,
        error_kinds=error_kinds,
    )
