"""Asyncio ``RKV1`` server fronting a :class:`~repro.service.KVService`.

The event loop owns only framing and scheduling; every service call runs in a
:class:`~concurrent.futures.ThreadPoolExecutor` via ``run_in_executor`` so the
per-shard single-worker executors inside :class:`KVService` keep exclusive
ownership of their backends (the bridge thread blocks on the shard future, the
loop never does).

Per connection:

* a **reader task** feeds socket chunks into an incremental
  :class:`~repro.net.protocol.FrameDecoder` and enqueues decoded requests —
  requests pipeline because the reader never waits for a response before
  decoding the next frame;
* a bounded **in-flight queue** (``max_inflight``) sits between reader and
  worker: when it fills, the reader stops reading the socket, which turns
  into TCP backpressure on a client that pipelines faster than the service
  can answer;
* a **worker task** pops requests in order, executes each, and writes its
  response before starting the next.  Execution is *sequential per
  connection* (the RESP model): pipelining amortises network round trips,
  it does not reorder effects — two pipelined SETs of one key land in
  request order.  Cross-connection requests still run concurrently, and a
  single ``MGET``/``MSET`` frame still fans out across shards in parallel
  inside :class:`KVService`.

Server-side exceptions never tear down a connection: they are relayed as
:class:`~repro.net.protocol.ErrorResponse` frames carrying the exception class
name (``ModelEpochError``, ``ServiceError``, …) and message.  The one
exception is a :class:`~repro.exceptions.ProtocolError` from the decoder —
after malformed bytes the stream cannot be re-synchronised, so the server
sends a final ERR frame and closes that connection (others are unaffected).

``stop(drain=True)`` is a graceful drain: stop accepting, wake every reader,
let the writers flush every request already decoded, close the sockets, and
finally ``KVService.flush()`` the shards so every answered write is durable
before the process exits (the ``repro serve --data-dir`` restart contract).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.exceptions import NetError, ProtocolError, ServiceError
from repro.net.protocol import (
    DEFAULT_MAX_BODY,
    CountResponse,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    Message,
    MGetRequest,
    MSetRequest,
    MultiValueResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    SetRequest,
    StatsRequest,
    StatsResponse,
    ValueResponse,
    encode_frame,
)
from repro.service.service import KVService

#: Socket read chunk size.
_READ_CHUNK = 64 * 1024

#: Queue sentinel telling a connection worker task to finish.
_CLOSE = object()

#: Queue item tags: a decoded request to execute, or a pre-built response
#: (the final ERR frame after a protocol error) to write as-is.
_REQUEST, _RESPONSE = "request", "response"


@dataclass(frozen=True)
class ServerConfig:
    """Configuration of a :class:`KVServer`."""

    #: interface to bind ("127.0.0.1" keeps the bench/test server local).
    host: str = "127.0.0.1"
    #: TCP port; 0 picks an ephemeral port (read it back from ``address``).
    port: int = 0
    #: pipelined requests allowed in flight per connection before the reader
    #: stops consuming the socket (backpressure).
    max_inflight: int = 64
    #: frame body size limit handed to the decoder.
    max_body: int = DEFAULT_MAX_BODY
    #: threads bridging blocking ``KVService`` calls off the event loop.
    bridge_threads: int = 8
    #: seconds ``stop(drain=True)`` waits before force-closing connections.
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise NetError("max_inflight must be at least 1")
        if self.bridge_threads < 1:
            raise NetError("bridge_threads must be at least 1")


def _decode_text(data: bytes, what: str) -> str:
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(f"{what} is not valid UTF-8: {error}") from None


class KVServer:
    """Serve a :class:`KVService` over the ``RKV1`` protocol.

    >>> service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    >>> server = KVServer(service)          # port 0 = ephemeral
    >>> await server.start()                # doctest: +SKIP
    >>> host, port = server.address         # doctest: +SKIP
    """

    def __init__(self, service: KVService, config: ServerConfig | None = None) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        self._server: asyncio.base_events.Server | None = None
        self._bridge = ThreadPoolExecutor(
            max_workers=self.config.bridge_threads, thread_name_prefix="kv-net-bridge"
        )
        self._draining: asyncio.Event | None = None
        self._connection_tasks: set[asyncio.Task] = set()
        self._stopped = False
        self.connections_served = 0
        self.protocol_errors = 0

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise NetError("server is already started")
        if self._stopped:
            raise NetError("server was stopped and cannot be restarted")
        self._draining = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host, port=self.config.port
            )
        except OSError as error:
            raise NetError(
                f"cannot bind {self.config.host}:{self.config.port}: {error}"
            ) from error

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves an ephemeral port)."""
        if self._server is None or not self._server.sockets:
            raise NetError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        """Block until the server is stopped."""
        if self._server is None:
            raise NetError("server is not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting and close every connection.

        With ``drain`` (the default) every request already received is
        answered before its connection closes, bounded by ``drain_timeout``;
        without it, connections are torn down immediately.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._draining is not None:
            self._draining.set()
        tasks = list(self._connection_tasks)
        if tasks:
            if drain:
                done, pending = await asyncio.wait(
                    tasks, timeout=self.config.drain_timeout
                )
            else:
                pending = set(tasks)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        try:
            if drain and not self.service.closed:
                # Every answered request is now durable: persistent shards
                # write their WAL barrier / TBS1 snapshot before the server
                # exits, so a restart on the same data directory serves every
                # acknowledged key.  Bridged off the loop like any other
                # blocking service call.
                loop = asyncio.get_running_loop()
                try:
                    await loop.run_in_executor(self._bridge, self.service.flush)
                except ServiceError:
                    # The owner closed the service between the check and the
                    # flush; close() flushes itself, so nothing was lost.
                    if not self.service.closed:
                        raise
        finally:
            self._bridge.shutdown(wait=True)

    # -------------------------------------------------------------- connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None and self._draining is not None
        self._connection_tasks.add(task)
        self.connections_served += 1
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_inflight)
        worker_task = asyncio.create_task(self._worker_loop(queue, writer))
        decoder = FrameDecoder(max_body=self.config.max_body)
        drain_wait = asyncio.create_task(self._draining.wait())
        try:
            while not self._draining.is_set():
                read_task = asyncio.create_task(reader.read(_READ_CHUNK))
                done, _ = await asyncio.wait(
                    {read_task, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read_task not in done:
                    # Draining: stop reading; everything decoded so far is
                    # already queued and will be answered by the worker.
                    read_task.cancel()
                    await asyncio.gather(read_task, return_exceptions=True)
                    break
                try:
                    data = read_task.result()
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                try:
                    requests = decoder.feed(data)
                except ProtocolError as error:
                    requests, failure = [], error
                else:
                    # Good frames arriving in the same chunk as malformed
                    # bytes are still returned (and answered below) — the
                    # outcome cannot depend on TCP segmentation.
                    failure = decoder.failure
                for request in requests:
                    # A full queue blocks here, pausing socket reads: TCP
                    # backpressure against over-eager pipelining.
                    await queue.put((_REQUEST, request))
                if failure is not None:
                    # The stream cannot be re-synchronised after bad bytes:
                    # answer with a final ERR frame and close this connection.
                    self.protocol_errors += 1
                    await queue.put(
                        (_RESPONSE, ErrorResponse(kind="ProtocolError", message=str(failure)))
                    )
                    break
        finally:
            drain_wait.cancel()
            await asyncio.gather(drain_wait, return_exceptions=True)
            await queue.put(_CLOSE)
            await asyncio.gather(worker_task, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connection_tasks.discard(task)

    async def _worker_loop(self, queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        """Execute queued requests in order, writing each response.

        Sequential execution keeps a connection's effects in request order
        (two pipelined SETs of one key cannot swap); a client that vanishes
        mid-batch stops the writes but the remaining requests still execute,
        so graceful drain semantics stay uniform.
        """
        client_alive = True
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            tag, payload = item
            response = await self._dispatch(payload) if tag == _REQUEST else payload
            if not client_alive:
                continue  # keep executing so stop() can drain the queue
            try:
                writer.write(encode_frame(response))
                await writer.drain()
            except (ConnectionError, OSError):
                client_alive = False

    # ----------------------------------------------------------------- dispatch

    async def _dispatch(self, request: Message) -> Message:
        """Run one request; every failure becomes a typed ERR response."""
        try:
            if isinstance(request, PingRequest):
                return PongResponse()
            handler = self._HANDLERS.get(type(request))
            if handler is None:
                raise ProtocolError(
                    f"frame {request.wire_name} is not a request"
                )
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._bridge, handler, self, request)
        except Exception as error:  # noqa: BLE001 — relayed, never fatal
            return ErrorResponse(kind=type(error).__name__, message=str(error))

    # The handlers below run on bridge threads, never on the event loop.

    def _handle_get(self, request: GetRequest) -> Message:
        value = self.service.get(_decode_text(request.key, "key"))
        return ValueResponse(value=None if value is None else value.encode("utf-8"))

    def _handle_set(self, request: SetRequest) -> Message:
        self.service.set(
            _decode_text(request.key, "key"), _decode_text(request.value, "value")
        )
        return OkResponse()

    def _handle_delete(self, request: DeleteRequest) -> Message:
        existed = self.service.delete(_decode_text(request.key, "key"))
        return CountResponse(count=1 if existed else 0)

    def _handle_mget(self, request: MGetRequest) -> Message:
        keys = [_decode_text(key, "key") for key in request.keys]
        values = self.service.mget(keys)
        return MultiValueResponse(
            values=tuple(
                None if value is None else value.encode("utf-8") for value in values
            )
        )

    def _handle_mset(self, request: MSetRequest) -> Message:
        items = [
            (_decode_text(key, "key"), _decode_text(value, "value"))
            for key, value in request.items
        ]
        self.service.mset(items)
        return OkResponse()

    def _handle_stats(self, _: StatsRequest) -> Message:
        snapshot = self.service.snapshot()
        document = {
            "keys": snapshot.keys,
            "gets": snapshot.gets,
            "sets": snapshot.sets,
            "deletes": snapshot.deletes,
            "cache_hits": snapshot.cache_hits,
            "cache_hit_rate": snapshot.cache.hit_rate,
            "cache_entries": snapshot.cache.entries,
            "ratio": snapshot.ratio,
            "retrain_events": snapshot.retrain_events,
            "get_p50_ms": snapshot.get_latency.p50_ms,
            "get_p99_ms": snapshot.get_latency.p99_ms,
            "set_p50_ms": snapshot.set_latency.p50_ms,
            "set_p99_ms": snapshot.set_latency.p99_ms,
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "backend": shard.backend,
                    "compressor": shard.compressor,
                    "keys": shard.keys,
                    "ratio": shard.ratio,
                    "outlier_rate": shard.outlier_rate,
                    "retrain_events": shard.retrain_events,
                }
                for shard in snapshot.shards
            ],
        }
        return StatsResponse(payload=json.dumps(document).encode("utf-8"))

    _HANDLERS = {
        GetRequest: _handle_get,
        SetRequest: _handle_set,
        DeleteRequest: _handle_delete,
        MGetRequest: _handle_mget,
        MSetRequest: _handle_mset,
        StatsRequest: _handle_stats,
    }


class ThreadedKVServer:
    """A :class:`KVServer` running its own event loop in a daemon thread.

    The harness the sync tests, benchmarks, and ``repro client bench`` build
    on: ``start()`` returns the bound ``(host, port)``; ``stop()`` drains
    gracefully.  Usable as a context manager.
    """

    def __init__(self, service: KVService, config: ServerConfig | None = None) -> None:
        self._server = KVServer(service, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def server(self) -> KVServer:
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise NetError("threaded server is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="kv-net-loop", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._server.start(), self._loop)
        try:
            future.result(timeout=30)
        except BaseException:
            # A failed bind must not leak a spinning loop thread or leave the
            # object wedged in "already started".
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop.close()
            self._loop = None
            self._thread = None
            raise
        return self._server.address

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._server.stop(drain), self._loop)
        future.result(timeout=self._server.config.drain_timeout + 30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ThreadedKVServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
