"""Asyncio ``RKV1`` server fronting a :class:`~repro.service.KVService`.

The event loop owns only framing and scheduling; every service call runs in a
:class:`~concurrent.futures.ThreadPoolExecutor` via ``run_in_executor`` so the
per-shard single-worker executors inside :class:`KVService` keep exclusive
ownership of their backends (the bridge thread blocks on the shard future, the
loop never does).

Per connection:

* a **reader task** feeds socket chunks into an incremental
  :class:`~repro.net.protocol.FrameDecoder` and enqueues decoded requests —
  requests pipeline because the reader never waits for a response before
  decoding the next frame;
* a bounded **in-flight queue** (``max_inflight``) sits between reader and
  worker: when it fills, the reader stops reading the socket, which turns
  into TCP backpressure on a client that pipelines faster than the service
  can answer;
* a **worker task** pops requests in order, executes each, and writes its
  response before starting the next.  Execution is *sequential per
  connection* (the RESP model): pipelining amortises network round trips,
  it does not reorder effects — two pipelined SETs of one key land in
  request order.  Cross-connection requests still run concurrently, and a
  single ``MGET``/``MSET`` frame still fans out across shards in parallel
  inside :class:`KVService`.

Server-side exceptions never tear down a connection: they are relayed as
:class:`~repro.net.protocol.ErrorResponse` frames carrying the exception class
name (``ModelEpochError``, ``ServiceError``, …) and message.  The one
exception is a :class:`~repro.exceptions.ProtocolError` from the decoder —
after malformed bytes the stream cannot be re-synchronised, so the server
sends a final ERR frame and closes that connection (others are unaffected).

Observability and overload protection (:mod:`repro.obs`): every dispatch is
counted and timed into the server's :class:`~repro.obs.MetricsRegistry`
(``repro_requests_total`` / ``repro_request_latency_seconds`` by opcode), the
registry is scrapeable over both the ``METRICS`` opcode and the optional
``GET /metrics`` HTTP sidecar (``ServerConfig.metrics_port``), and
:meth:`KVServer._enforce_limits` refuses over-budget or oversized requests
with typed :class:`~repro.exceptions.RateLimitedError` /
:class:`~repro.exceptions.LimitExceededError` ERR frames — rejections refuse
one request, never the connection, and each increments a labelled
``repro_rejections_total`` sample (docs/ARCHITECTURE.md, "Observability").

``stop(drain=True)`` is a graceful drain: stop accepting, wake every reader,
let the writers flush every request already decoded, close the sockets, and
finally ``KVService.flush()`` the shards so every answered write is durable
before the process exits (the ``repro serve --data-dir`` restart contract).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.exceptions import (
    LimitExceededError,
    NetError,
    ProtocolError,
    RateLimitedError,
    ServiceError,
)
from repro.net.protocol import (
    DEFAULT_MAX_BODY,
    CountResponse,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    Message,
    MetricsRequest,
    MetricsResponse,
    MGetRequest,
    MSetRequest,
    MultiKeyValueResponse,
    MultiValueResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ScanRequest,
    SetRequest,
    StatsRequest,
    StatsResponse,
    ValueResponse,
    encode_frame,
)
from repro.obs.exposition import MetricsHTTPServer, render_text
from repro.obs.limits import RequestLimits, SlowRequestLog, TokenBucket
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.service.service import KVService

#: Socket read chunk size.
_READ_CHUNK = 64 * 1024

#: Queue sentinel telling a connection worker task to finish.
_CLOSE = object()

#: Queue item tags: a decoded request to execute, or a pre-built response
#: (the final ERR frame after a protocol error) to write as-is.
_REQUEST, _RESPONSE = "request", "response"

#: SCAN response chunking: a chunk closes at this many pairs or this many
#: payload bytes, whichever comes first.  Bounded chunks keep any single
#: frame small, so a huge range cannot head-of-line-block the responses
#: pipelined behind it on the same connection.
SCAN_CHUNK_PAIRS = 256
SCAN_CHUNK_BYTES = 64 * 1024


def _chunk_scan_results(results: list[tuple[str, str]]) -> list[MultiKeyValueResponse]:
    """Split scan results into bounded MKVALUE frames, the last one final."""
    frames: list[MultiKeyValueResponse] = []
    pairs: list[tuple[bytes, bytes]] = []
    chunk_bytes = 0
    for key, value in results:
        pair = (key.encode("utf-8"), value.encode("utf-8"))
        pairs.append(pair)
        chunk_bytes += len(pair[0]) + len(pair[1])
        if len(pairs) >= SCAN_CHUNK_PAIRS or chunk_bytes >= SCAN_CHUNK_BYTES:
            frames.append(MultiKeyValueResponse(pairs=tuple(pairs), final=False))
            pairs, chunk_bytes = [], 0
    frames.append(MultiKeyValueResponse(pairs=tuple(pairs), final=True))
    return frames


@dataclass(frozen=True)
class ServerConfig:
    """Configuration of a :class:`KVServer`."""

    #: interface to bind ("127.0.0.1" keeps the bench/test server local).
    host: str = "127.0.0.1"
    #: TCP port; 0 picks an ephemeral port (read it back from ``address``).
    port: int = 0
    #: pipelined requests allowed in flight per connection before the reader
    #: stops consuming the socket (backpressure).
    max_inflight: int = 64
    #: frame body size limit handed to the decoder.
    max_body: int = DEFAULT_MAX_BODY
    #: threads bridging blocking ``KVService`` calls off the event loop.
    bridge_threads: int = 8
    #: seconds ``stop(drain=True)`` waits before force-closing connections.
    drain_timeout: float = 10.0
    #: whether the server records metrics at all (``False`` swaps the whole
    #: registry for no-op instruments — the bench-comparison baseline).
    metrics_enabled: bool = True
    #: port for the ``GET /metrics`` HTTP sidecar (``None`` = no sidecar,
    #: 0 = ephemeral; the ``METRICS`` opcode works either way).
    metrics_port: int | None = None
    #: largest accepted SET / MSET value in bytes (0 = unlimited).
    max_value_bytes: int = 0
    #: largest accepted MGET / MSET batch item count (0 = unlimited).
    max_batch_items: int = 0
    #: per-connection request budget in requests/second (0 = unlimited).
    rate_limit: float = 0.0
    #: token-bucket burst capacity (0 = ``max(1, rate_limit)``).
    rate_burst: int = 0
    #: slow-request log threshold in seconds (0 disables the slow log).
    slow_request_seconds: float = 0.0
    #: cap on emitted slow-request log lines per second.
    slow_log_per_second: float = 1.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise NetError("max_inflight must be at least 1")
        if self.bridge_threads < 1:
            raise NetError("bridge_threads must be at least 1")
        if self.metrics_port is not None and self.metrics_port < 0:
            raise NetError("metrics_port must be >= 0 (or None to disable)")
        if self.slow_request_seconds < 0 or self.slow_log_per_second < 0:
            raise NetError("slow-request settings must be >= 0 (0 disables)")
        # RequestLimits re-validates the size/rate fields; building it here
        # surfaces a bad value at config time, not at first connection.
        self.limits()

    def limits(self) -> RequestLimits:
        """The per-connection protection policy this config describes."""
        return RequestLimits(
            max_value_bytes=self.max_value_bytes,
            max_batch_items=self.max_batch_items,
            rate_limit=self.rate_limit,
            rate_burst=self.rate_burst,
        )


def _decode_text(data: bytes, what: str) -> str:
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(f"{what} is not valid UTF-8: {error}") from None


class KVServer:
    """Serve a :class:`KVService` over the ``RKV1`` protocol.

    >>> service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    >>> server = KVServer(service)          # port 0 = ephemeral
    >>> await server.start()                # doctest: +SKIP
    >>> host, port = server.address         # doctest: +SKIP
    """

    def __init__(
        self,
        service: KVService,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        self._server: asyncio.base_events.Server | None = None
        self._bridge = ThreadPoolExecutor(
            max_workers=self.config.bridge_threads, thread_name_prefix="kv-net-bridge"
        )
        self._draining: asyncio.Event | None = None
        self._connection_tasks: set[asyncio.Task] = set()
        self._stopped = False
        self.connections_served = 0
        self.protocol_errors = 0
        self._limits = self.config.limits()
        self._slow_log = (
            SlowRequestLog(
                self.config.slow_request_seconds,
                per_second=self.config.slow_log_per_second,
            )
            if self.config.slow_request_seconds > 0
            else None
        )
        #: the server's metric registry; pass one in to share it, or rely on
        #: ``config.metrics_enabled=False`` to make every instrument a no-op.
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(enabled=self.config.metrics_enabled)
        )
        self.metrics_sidecar: MetricsHTTPServer | None = None
        # Per-opcode (counter, histogram) children, resolved once per opcode
        # and held — the dispatch hot path skips the labels() lookups.
        self._opcode_cells: dict[str, tuple] = {}
        self._register_instruments()

    def _register_instruments(self) -> None:
        """Create every metric family eagerly (docs pin the full inventory)."""
        registry = self.registry
        self._requests = registry.counter(
            "repro_requests_total",
            "Requests dispatched, by opcode (rejected and errored included).",
            ("opcode",),
        )
        self._latency = registry.histogram(
            "repro_request_latency_seconds",
            "Server-side request latency, by opcode.",
            ("opcode",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._rejections = registry.counter(
            "repro_rejections_total",
            "Requests refused by overload protection, by opcode and reason.",
            ("opcode", "reason"),
        )
        self._slow_requests = registry.counter(
            "repro_slow_requests_total",
            "Requests slower than the slow-request threshold, by opcode.",
            ("opcode",),
        )
        self._inflight = registry.gauge(
            "repro_inflight_requests",
            "Decoded requests queued or executing, summed over connections.",
        )
        self._connections_active = registry.gauge(
            "repro_connections_active", "Currently open client connections."
        )
        self._connections_total = registry.counter(
            "repro_connections_total", "Client connections accepted since start."
        )
        self._protocol_errors = registry.counter(
            "repro_protocol_errors_total",
            "Connections dropped after undecodable bytes.",
        )
        shard_labels = ("shard", "backend", "codec")
        self._shard_keys = registry.gauge(
            "repro_shard_keys", "Live keys per shard.", shard_labels
        )
        self._shard_ratio = registry.gauge(
            "repro_shard_compression_ratio",
            "Stored/original bytes per shard (lower is better).",
            shard_labels,
        )
        self._shard_outliers = registry.gauge(
            "repro_shard_outlier_rate",
            "Fraction of values that matched no trained pattern, per shard.",
            shard_labels,
        )
        self._shard_disk = registry.gauge(
            "repro_shard_bytes_on_disk",
            "Durable footprint per shard (SSTables + WAL, or TBS2 snapshot).",
            shard_labels,
        )
        self._shard_sstables = registry.gauge(
            "repro_shard_sstables", "SSTable file count per shard.", shard_labels
        )
        self._shard_epoch = registry.gauge(
            "repro_shard_model_epoch",
            "Model epoch new writes are stamped with, per shard.",
            shard_labels,
        )
        self._shard_epoch_age = registry.gauge(
            "repro_shard_model_epoch_age_seconds",
            "Seconds since the current model epoch was installed, per shard.",
            shard_labels,
        )
        self._shard_retrains = registry.gauge(
            "repro_shard_retrain_events", "Retraining events per shard.", shard_labels
        )
        self._shard_wal_fsyncs = registry.gauge(
            "repro_shard_wal_fsyncs", "WAL fsync barriers taken, per shard.", shard_labels
        )
        self._shard_wal_fsync_seconds = registry.gauge(
            "repro_shard_wal_fsync_seconds",
            "Cumulative WAL fsync wall time, per shard.",
            shard_labels,
        )
        self._shard_levels = registry.gauge(
            "repro_shard_levels", "Distinct live SSTable levels per shard.", shard_labels
        )
        self._shard_pending_compaction = registry.gauge(
            "repro_shard_pending_compaction_bytes",
            "Bytes in levels at/over the compaction trigger (merge backlog), per shard.",
            shard_labels,
        )
        self._shard_stall_seconds = registry.gauge(
            "repro_shard_compaction_stall_seconds",
            "Cumulative seconds writes spent throttled by L0 admission control, per shard.",
            shard_labels,
        )
        self._shard_compactions = registry.gauge(
            "repro_shard_compactions", "Compaction merges performed, per shard.", shard_labels
        )
        self._shard_last_lsn = registry.gauge(
            "repro_shard_last_lsn",
            "Newest operation-log LSN applied, per shard (read-your-writes watermark).",
            shard_labels,
        )
        self._oplog_subscriber_lag = registry.gauge(
            "repro_oplog_subscriber_lag_records",
            "Worst operation-log subscriber backlog in records, per shard.",
            shard_labels,
        )
        self._cache_hit_rate = registry.gauge(
            "repro_cache_hit_rate", "Service cache hit rate over its lifetime."
        )
        self._cache_entries = registry.gauge(
            "repro_cache_entries", "Entries resident in the service cache."
        )
        self._service_keys = registry.gauge(
            "repro_service_keys", "Live keys across all shards."
        )
        registry.register_collector(self._collect_service_gauges)

    def _collect_service_gauges(self) -> None:
        """Scrape-time bridge: mirror the service snapshot into gauges.

        Runs on the scraping thread (bridge thread for the ``METRICS`` opcode,
        the default executor for the HTTP sidecar).  A service that is closed
        or mid-shutdown simply keeps the previous gauge values — a scrape must
        never take a server down.
        """
        if self.service.closed:
            return
        snapshot = self.service.snapshot()
        for shard in snapshot.shards:
            labels = (str(shard.shard_id), shard.backend, shard.compressor)
            self._shard_keys.labels(*labels).set(shard.keys)
            self._shard_ratio.labels(*labels).set(shard.ratio)
            self._shard_outliers.labels(*labels).set(shard.outlier_rate)
            self._shard_disk.labels(*labels).set(shard.bytes_on_disk)
            self._shard_sstables.labels(*labels).set(shard.sstables)
            self._shard_epoch.labels(*labels).set(shard.model_epoch)
            self._shard_epoch_age.labels(*labels).set(shard.model_epoch_age_seconds)
            self._shard_retrains.labels(*labels).set(shard.retrain_events)
            self._shard_wal_fsyncs.labels(*labels).set(shard.wal_fsyncs)
            self._shard_wal_fsync_seconds.labels(*labels).set(shard.wal_fsync_seconds)
            self._shard_levels.labels(*labels).set(shard.levels)
            self._shard_pending_compaction.labels(*labels).set(shard.pending_compaction_bytes)
            self._shard_stall_seconds.labels(*labels).set(shard.compaction_stall_seconds)
            self._shard_compactions.labels(*labels).set(shard.compactions)
            self._shard_last_lsn.labels(*labels).set(shard.last_lsn)
            self._oplog_subscriber_lag.labels(*labels).set(shard.oplog_lag_records)
        self._cache_hit_rate.set(snapshot.cache.hit_rate)
        self._cache_entries.set(snapshot.cache.entries)
        self._service_keys.set(snapshot.keys)

    def render_metrics(self) -> str:
        """The Prometheus exposition text — one renderer for both transports."""
        return render_text(self.registry)

    # ---------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise NetError("server is already started")
        if self._stopped:
            raise NetError("server was stopped and cannot be restarted")
        self._draining = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host, port=self.config.port
            )
        except OSError as error:
            raise NetError(
                f"cannot bind {self.config.host}:{self.config.port}: {error}"
            ) from error
        if self.config.metrics_port is not None:
            sidecar = MetricsHTTPServer(
                self.render_metrics, host=self.config.host, port=self.config.metrics_port
            )
            try:
                await sidecar.start()
            except NetError:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
                raise
            self.metrics_sidecar = sidecar

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves an ephemeral port)."""
        if self._server is None or not self._server.sockets:
            raise NetError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def metrics_address(self) -> tuple[str, int]:
        """``(host, port)`` of the metrics sidecar (raises without one)."""
        if self.metrics_sidecar is None:
            raise NetError("server has no metrics sidecar (set metrics_port)")
        return self.metrics_sidecar.address

    async def serve_forever(self) -> None:
        """Block until the server is stopped."""
        if self._server is None:
            raise NetError("server is not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting and close every connection.

        With ``drain`` (the default) every request already received is
        answered before its connection closes, bounded by ``drain_timeout``;
        without it, connections are torn down immediately.
        """
        if self._stopped:
            return
        self._stopped = True
        if self.metrics_sidecar is not None:
            await self.metrics_sidecar.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._draining is not None:
            self._draining.set()
        tasks = list(self._connection_tasks)
        if tasks:
            if drain:
                done, pending = await asyncio.wait(
                    tasks, timeout=self.config.drain_timeout
                )
            else:
                pending = set(tasks)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        try:
            if drain and not self.service.closed:
                # Every answered request is now durable: persistent shards
                # write their WAL barrier / TBS2 snapshot before the server
                # exits, so a restart on the same data directory serves every
                # acknowledged key.  Bridged off the loop like any other
                # blocking service call.
                loop = asyncio.get_running_loop()
                try:
                    await loop.run_in_executor(self._bridge, self.service.flush)
                except ServiceError:
                    # The owner closed the service between the check and the
                    # flush; close() flushes itself, so nothing was lost.
                    if not self.service.closed:
                        raise
        finally:
            self._bridge.shutdown(wait=True)

    # -------------------------------------------------------------- connections

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None and self._draining is not None
        self._connection_tasks.add(task)
        self.connections_served += 1
        self._connections_total.inc()
        self._connections_active.inc()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_inflight)
        # Each connection gets its own token bucket: one greedy client being
        # throttled must not starve its peers' budgets.
        limiter = self._limits.bucket()
        worker_task = asyncio.create_task(self._worker_loop(queue, writer, limiter))
        decoder = FrameDecoder(max_body=self.config.max_body)
        drain_wait = asyncio.create_task(self._draining.wait())
        try:
            while not self._draining.is_set():
                read_task = asyncio.create_task(reader.read(_READ_CHUNK))
                done, _ = await asyncio.wait(
                    {read_task, drain_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read_task not in done:
                    # Draining: stop reading; everything decoded so far is
                    # already queued and will be answered by the worker.
                    read_task.cancel()
                    await asyncio.gather(read_task, return_exceptions=True)
                    break
                try:
                    data = read_task.result()
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                try:
                    requests = decoder.feed(data)
                except ProtocolError as error:
                    requests, failure = [], error
                else:
                    # Good frames arriving in the same chunk as malformed
                    # bytes are still returned (and answered below) — the
                    # outcome cannot depend on TCP segmentation.
                    failure = decoder.failure
                for request in requests:
                    # A full queue blocks here, pausing socket reads: TCP
                    # backpressure against over-eager pipelining.  The gauge
                    # counts queued + executing, so its bound per connection
                    # is max_inflight + 2 (a full queue, one executing, one
                    # blocked in put here).
                    self._inflight.inc()
                    await queue.put((_REQUEST, request))
                if failure is not None:
                    # The stream cannot be re-synchronised after bad bytes:
                    # answer with a final ERR frame and close this connection.
                    self.protocol_errors += 1
                    self._protocol_errors.inc()
                    await queue.put(
                        (_RESPONSE, ErrorResponse(kind="ProtocolError", message=str(failure)))
                    )
                    break
        finally:
            drain_wait.cancel()
            await asyncio.gather(drain_wait, return_exceptions=True)
            await queue.put(_CLOSE)
            await asyncio.gather(worker_task, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connection_tasks.discard(task)
            self._connections_active.dec()

    async def _worker_loop(
        self,
        queue: asyncio.Queue,
        writer: asyncio.StreamWriter,
        limiter: TokenBucket | None,
    ) -> None:
        """Execute queued requests in order, writing each response.

        Sequential execution keeps a connection's effects in request order
        (two pipelined SETs of one key cannot swap); a client that vanishes
        mid-batch stops the writes but the remaining requests still execute,
        so graceful drain semantics stay uniform.

        A dispatch may return a *sequence* of frames (a chunked SCAN result):
        they are written back-to-back before the next request's response, so
        the per-connection response-order contract is untouched — a scan is
        one request with a multi-frame answer, not an interleaving.
        """
        client_alive = True
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            tag, payload = item
            if tag == _REQUEST:
                try:
                    response = await self._dispatch(payload, limiter)
                finally:
                    self._inflight.dec()
            else:
                response = payload
            if not client_alive:
                continue  # keep executing so stop() can drain the queue
            frames = response if isinstance(response, list) else [response]
            try:
                for frame in frames:
                    writer.write(encode_frame(frame))
                    await writer.drain()
            except (ConnectionError, OSError):
                client_alive = False

    # ----------------------------------------------------------------- dispatch

    @staticmethod
    def _key_count(request: Message) -> int:
        """Logical keys a request touches (the slow log's batch-size column)."""
        if isinstance(request, MGetRequest):
            return len(request.keys)
        if isinstance(request, MSetRequest):
            return len(request.items)
        if isinstance(request, (GetRequest, SetRequest, DeleteRequest)):
            return 1
        if isinstance(request, ScanRequest):
            return request.limit
        return 0

    def _enforce_limits(self, request: Message, limiter: TokenBucket | None) -> None:
        """Refuse over-budget or oversized requests with typed errors.

        The rate check runs first — a flooded server must shed load before it
        spends any time inspecting payloads.  Each refusal increments exactly
        one labelled ``repro_rejections_total`` sample and refuses only the
        offending request; the connection stays usable.
        """
        if limiter is not None and not limiter.try_acquire():
            self._rejections.labels(request.wire_name, "rate").inc()
            raise RateLimitedError(
                f"connection exceeded its {self._limits.rate_limit:g} req/s budget"
            )
        max_value = self._limits.max_value_bytes
        if max_value:
            values: tuple[bytes, ...] = ()
            if isinstance(request, SetRequest):
                values = (request.value,)
            elif isinstance(request, MSetRequest):
                values = tuple(value for _, value in request.items)
            for value in values:
                if len(value) > max_value:
                    self._rejections.labels(request.wire_name, "value_bytes").inc()
                    raise LimitExceededError(
                        f"value of {len(value)} bytes exceeds the server's "
                        f"max_value_bytes={max_value}"
                    )
        max_items = self._limits.max_batch_items
        if max_items:
            count = 0
            if isinstance(request, MGetRequest):
                count = len(request.keys)
            elif isinstance(request, MSetRequest):
                count = len(request.items)
            if count > max_items:
                self._rejections.labels(request.wire_name, "batch_items").inc()
                raise LimitExceededError(
                    f"batch of {count} items exceeds the server's "
                    f"max_batch_items={max_items}"
                )
            # A scan is a batch read: its result budget falls under the same
            # cap, and an unbounded scan (limit 0) is over any finite cap.
            if isinstance(request, ScanRequest) and (
                request.limit == 0 or request.limit > max_items
            ):
                self._rejections.labels(request.wire_name, "batch_items").inc()
                limit = request.limit if request.limit else "unlimited"
                raise LimitExceededError(
                    f"scan limit {limit} exceeds the server's "
                    f"max_batch_items={max_items}"
                )

    async def _dispatch(
        self, request: Message, limiter: TokenBucket | None = None
    ) -> Message | list[Message]:
        """Run one request; every failure becomes a typed ERR response.

        Most handlers return one frame; the SCAN handler returns the chunked
        frame list its worker writes in order.
        """
        started = time.perf_counter()
        try:
            self._enforce_limits(request, limiter)
            if isinstance(request, PingRequest):
                return PongResponse()
            handler = self._HANDLERS.get(type(request))
            if handler is None:
                raise ProtocolError(
                    f"frame {request.wire_name} is not a request"
                )
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._bridge, handler, self, request)
        except Exception as error:  # noqa: BLE001 — relayed, never fatal
            return ErrorResponse(kind=type(error).__name__, message=str(error))
        finally:
            # Count after execution, so a scrape via the METRICS opcode does
            # not see itself: both transports render identical text when the
            # registry is otherwise quiet.
            elapsed = time.perf_counter() - started
            opcode = request.wire_name
            cells = self._opcode_cells.get(opcode)
            if cells is None:
                # Resolve the per-opcode children once and hold them: the
                # steady-state path is then two bound-method calls.
                cells = (self._requests.labels(opcode), self._latency.labels(opcode))
                self._opcode_cells[opcode] = cells
            cells[0].inc()
            cells[1].observe(elapsed)
            if self._slow_log is not None and self._slow_log.record(
                opcode, self._key_count(request), elapsed
            ):
                self._slow_requests.labels(opcode).inc()

    # The handlers below run on bridge threads, never on the event loop.

    def _handle_get(self, request: GetRequest) -> Message:
        value = self.service.get(_decode_text(request.key, "key"))
        return ValueResponse(value=None if value is None else value.encode("utf-8"))

    def _handle_set(self, request: SetRequest) -> Message:
        self.service.set(
            _decode_text(request.key, "key"), _decode_text(request.value, "value")
        )
        return OkResponse()

    def _handle_delete(self, request: DeleteRequest) -> Message:
        existed = self.service.delete(_decode_text(request.key, "key"))
        return CountResponse(count=1 if existed else 0)

    def _handle_mget(self, request: MGetRequest) -> Message:
        keys = [_decode_text(key, "key") for key in request.keys]
        values = self.service.mget(keys)
        return MultiValueResponse(
            values=tuple(
                None if value is None else value.encode("utf-8") for value in values
            )
        )

    def _handle_mset(self, request: MSetRequest) -> Message:
        items = [
            (_decode_text(key, "key"), _decode_text(value, "value"))
            for key, value in request.items
        ]
        self.service.mset(items)
        return OkResponse()

    def _handle_stats(self, _: StatsRequest) -> Message:
        snapshot = self.service.snapshot()
        document = {
            "keys": snapshot.keys,
            "gets": snapshot.gets,
            "sets": snapshot.sets,
            "deletes": snapshot.deletes,
            "cache_hits": snapshot.cache_hits,
            "cache_hit_rate": snapshot.cache.hit_rate,
            "cache_entries": snapshot.cache.entries,
            "ratio": snapshot.ratio,
            "retrain_events": snapshot.retrain_events,
            "get_p50_ms": snapshot.get_latency.p50_ms,
            "get_p99_ms": snapshot.get_latency.p99_ms,
            "set_p50_ms": snapshot.set_latency.p50_ms,
            "set_p99_ms": snapshot.set_latency.p99_ms,
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "backend": shard.backend,
                    "compressor": shard.compressor,
                    "keys": shard.keys,
                    "ratio": shard.ratio,
                    "outlier_rate": shard.outlier_rate,
                    "retrain_events": shard.retrain_events,
                }
                for shard in snapshot.shards
            ],
        }
        return StatsResponse(payload=json.dumps(document).encode("utf-8"))

    def _handle_metrics(self, _: MetricsRequest) -> Message:
        # Same render_text call the HTTP sidecar makes, so both transports
        # return byte-identical exposition text for the same registry state.
        return MetricsResponse(payload=self.render_metrics().encode("utf-8"))

    def _handle_scan(self, request: ScanRequest) -> list[Message]:
        start = (
            _decode_text(request.start, "scan start bound")
            if request.start is not None
            else None
        )
        end = (
            _decode_text(request.end, "scan end bound")
            if request.end is not None
            else None
        )
        limit = request.limit if request.limit > 0 else None
        return list(_chunk_scan_results(self.service.scan(start, end, limit)))

    _HANDLERS = {
        GetRequest: _handle_get,
        SetRequest: _handle_set,
        DeleteRequest: _handle_delete,
        MGetRequest: _handle_mget,
        MSetRequest: _handle_mset,
        StatsRequest: _handle_stats,
        MetricsRequest: _handle_metrics,
        ScanRequest: _handle_scan,
    }


class ThreadedKVServer:
    """A :class:`KVServer` running its own event loop in a daemon thread.

    The harness the sync tests, benchmarks, and ``repro client bench`` build
    on: ``start()`` returns the bound ``(host, port)``; ``stop()`` drains
    gracefully.  Usable as a context manager.
    """

    def __init__(self, service: KVService, config: ServerConfig | None = None) -> None:
        self._server = KVServer(service, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def server(self) -> KVServer:
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    @property
    def metrics_address(self) -> tuple[str, int]:
        return self._server.metrics_address

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise NetError("threaded server is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="kv-net-loop", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._server.start(), self._loop)
        try:
            future.result(timeout=30)
        except BaseException:
            # A failed bind must not leak a spinning loop thread or leave the
            # object wedged in "already started".
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop.close()
            self._loop = None
            self._thread = None
            raise
        return self._server.address

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._server.stop(drain), self._loop)
        future.result(timeout=self._server.config.drain_timeout + 30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ThreadedKVServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
