"""``repro.net`` — the ``RKV1`` wire protocol, server, and clients.

Puts the sharded :class:`~repro.service.KVService` on a TCP socket — the wire
the ROADMAP's "serve heavy traffic" north star needs, modelled on the paper's
Section 7.5 production deployment of a compressed KV store behind network
traffic:

* :mod:`repro.net.protocol` — length-prefixed binary frames (magic ``RKV1``,
  u8 opcode, uvarint lengths), typed request/response dataclasses, and an
  incremental :class:`FrameDecoder` that tolerates partial reads and maps
  every malformed input to a typed :class:`~repro.exceptions.ProtocolError`;
* :mod:`repro.net.server` — the asyncio :class:`KVServer` (per-connection
  reader task, request pipelining with a bounded in-flight queue for
  backpressure, graceful drain on shutdown) and the thread-hosted
  :class:`ThreadedKVServer` harness; service calls are bridged with
  ``run_in_executor`` so the shard executors keep backend ownership;
* :mod:`repro.net.client` — the pooled synchronous :class:`KVClient` (with
  :class:`Pipeline` for N-requests-per-round-trip) and the asyncio
  :class:`AsyncKVClient`; server errors come back as typed
  :class:`~repro.exceptions.RemoteError` subclasses that also inherit the
  original exception type (``ModelEpochError`` stays catchable);
* :mod:`repro.net.loadgen` — the mixed GET/SET wire workload drivers behind
  ``repro client bench`` and ``benchmarks/bench_net.py``: closed-loop
  (:func:`run_wire_workload`) and open-loop arrival-rate
  (:func:`run_open_loop_workload`, offered vs achieved rate).

The server is instrumented end to end with :mod:`repro.obs`: per-opcode
counters and latency histograms, a ``METRICS`` opcode answering the same
Prometheus exposition text as the optional ``--metrics-port`` HTTP sidecar,
and per-connection overload protection (token-bucket rate limiting plus
value/batch size caps) whose rejections reach clients as typed
:class:`~repro.exceptions.RateLimitedError` /
:class:`~repro.exceptions.LimitExceededError`.

Quick start::

    from repro.service import KVService, ServiceConfig
    from repro.net import KVClient, ServerConfig, ThreadedKVServer

    service = KVService(ServiceConfig(shard_count=2, compressor="none"))
    with ThreadedKVServer(service, ServerConfig(port=0)) as server:
        host, port = server.address
        with KVClient(host, port) as client:
            client.set("k", "v")
            assert client.get("k") == "v"
    service.close()

Or from the command line: ``repro serve --port 9100`` then
``repro client --port 9100 get k``.
"""

from repro.net.client import AsyncKVClient, KVClient, Pipeline, remote_error
from repro.net.loadgen import (
    OpenLoopResult,
    WireWorkloadResult,
    preload_over_wire,
    run_open_loop_workload,
    run_wire_workload,
)
from repro.net.protocol import (
    DEFAULT_MAX_BODY,
    MAGIC,
    FRAME_TYPES,
    CountResponse,
    DeleteRequest,
    ErrorResponse,
    FrameDecoder,
    GetRequest,
    Message,
    MetricsRequest,
    MetricsResponse,
    MGetRequest,
    MSetRequest,
    MultiKeyValueResponse,
    MultiValueResponse,
    OkResponse,
    PingRequest,
    PongResponse,
    ScanRequest,
    SetRequest,
    StatsRequest,
    StatsResponse,
    ValueResponse,
    decode_frames,
    encode_frame,
    opcode_table,
)
from repro.net.server import KVServer, ServerConfig, ThreadedKVServer

__all__ = [
    "AsyncKVClient",
    "CountResponse",
    "DEFAULT_MAX_BODY",
    "DeleteRequest",
    "ErrorResponse",
    "FRAME_TYPES",
    "FrameDecoder",
    "GetRequest",
    "KVClient",
    "KVServer",
    "MAGIC",
    "MGetRequest",
    "MSetRequest",
    "Message",
    "MetricsRequest",
    "MetricsResponse",
    "MultiKeyValueResponse",
    "MultiValueResponse",
    "OkResponse",
    "OpenLoopResult",
    "Pipeline",
    "PingRequest",
    "PongResponse",
    "ScanRequest",
    "ServerConfig",
    "SetRequest",
    "StatsRequest",
    "StatsResponse",
    "ThreadedKVServer",
    "ValueResponse",
    "WireWorkloadResult",
    "decode_frames",
    "encode_frame",
    "opcode_table",
    "preload_over_wire",
    "remote_error",
    "run_open_loop_workload",
    "run_wire_workload",
]
