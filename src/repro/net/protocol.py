"""The ``RKV1`` wire protocol: length-prefixed binary frames over TCP.

RESP-inspired, but length-prefixed instead of line-delimited so that frames
can carry arbitrary binary keys and values (including empty ones and values
far larger than a read buffer).  Every frame — request or response — has the
same envelope (docs/FORMATS.md §7)::

    magic   "RKV1"            4 bytes
    opcode  u8                request 0x01–0x09 / response 0x80–0xBF
    length  uvarint           body byte count (bounded by ``max_body``)
    body    `length` bytes    per-opcode layout below

Body layouts use the same LEB128 uvarints as every other on-disk format in
the repository (:mod:`repro.entropy.varint`).  Responses arrive **in request
order** on a connection — that is what makes client-side pipelining a pure
framing concern with no request ids.

The :class:`FrameDecoder` is incremental: it can be fed arbitrary chunks
(one byte at a time, or many frames at once) and yields complete messages as
they become available.  Malformed input — wrong magic, unknown opcode, a
declared length above the limit, or a body whose internal lengths do not add
up — raises the typed :class:`~repro.exceptions.ProtocolError` as soon as the
offending bytes are seen; the decoder never waits for more input to reject a
frame that is already provably bad, and never reads past the declared body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.entropy.varint import encode_uvarint
from repro.exceptions import ProtocolError

#: Frame envelope magic (every frame, both directions).
MAGIC = b"RKV1"
_MAGIC_LEN = len(MAGIC)

#: Default ceiling on a frame's declared body length (16 MiB).  A frame
#: declaring more is rejected *before* any body byte is buffered.
DEFAULT_MAX_BODY = 16 * 1024 * 1024

#: A uvarint longer than this many bytes cannot fit in 64 bits.
_MAX_UVARINT_BYTES = 10


# ---------------------------------------------------------------- body cursor


class _Cursor:
    """Strict reader over one frame body inside the receive buffer.

    The cursor reads the body *in place*: ``raw`` is the whole receive
    buffer (indexed directly for control bytes — flags and uvarints — since
    integer indexing is fastest on ``bytes``/``bytearray``), ``view`` is a
    ``memoryview`` over the same buffer used to slice blob payloads, so the
    only ``bytes`` materialised are the blobs a message actually keeps.
    Standalone use (``_Cursor(body)``) works on a plain ``bytes`` body.

    Every overrun is a :class:`ProtocolError`: by the time a body is parsed
    the decoder holds exactly ``length`` bytes, so running out means the
    frame's internal lengths contradict its declared length.
    """

    __slots__ = ("_raw", "_view", "_offset", "_end")

    def __init__(
        self,
        raw: bytes | bytearray,
        view: "memoryview | bytes | bytearray | None" = None,
        start: int = 0,
        end: int | None = None,
    ) -> None:
        self._raw = raw
        self._view = raw if view is None else view
        self._offset = start
        self._end = len(raw) if end is None else end

    def read_uvarint(self) -> int:
        raw = self._raw
        limit = self._end
        offset = self._offset
        result = 0
        shift = 0
        while True:
            if offset >= limit:
                raise ProtocolError("frame body ends inside a uvarint")
            byte = raw[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._offset = offset
                return result
            shift += 7
            if shift > 63:
                raise ProtocolError("frame body uvarint does not fit in 64 bits")

    def read_bytes(self, count: int) -> bytes:
        offset = self._offset
        end = offset + count
        if end > self._end:
            raise ProtocolError(
                f"frame body declares {count} bytes where only "
                f"{self._end - offset} remain"
            )
        self._offset = end
        return bytes(self._view[offset:end])

    def read_u8(self) -> int:
        offset = self._offset
        if offset >= self._end:
            raise ProtocolError("frame body declares 1 bytes where only 0 remain")
        self._offset = offset + 1
        return self._raw[offset]

    def read_blob(self) -> bytes:
        return self.read_bytes(self.read_uvarint())

    def read_blobs(self, count: int) -> tuple[bytes, ...]:
        """``count`` length-prefixed blobs in one pass (MGET key lists).

        The batched readers hoist the per-item method and attribute traffic
        of ``read_blob`` into a tight local-variable loop — on
        multi-hundred-item MVALUE / MKVALUE bodies that is the difference
        the committed ``mvalue_batch_decode`` benchmark row measures.
        """
        raw = self._raw
        view = self._view
        limit = self._end
        position = self._offset
        blobs: list[bytes] = []
        append = blobs.append
        for _ in range(count):
            result = 0
            shift = 0
            while True:
                if position >= limit:
                    raise ProtocolError("frame body ends inside a uvarint")
                byte = raw[position]
                position += 1
                result |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
                if shift > 63:
                    raise ProtocolError("frame body uvarint does not fit in 64 bits")
            end = position + result
            if end > limit:
                raise ProtocolError(
                    f"frame body declares {result} bytes where only "
                    f"{limit - position} remain"
                )
            append(bytes(view[position:end]))
            position = end
        self._offset = position
        return tuple(blobs)

    def read_flagged_blobs(self, count: int, wire_name: str) -> tuple[bytes | None, ...]:
        """``count`` presence-flagged blobs (the MVALUE body layout)."""
        raw = self._raw
        view = self._view
        limit = self._end
        position = self._offset
        values: list[bytes | None] = []
        append = values.append
        for _ in range(count):
            if position >= limit:
                raise ProtocolError("frame body declares 1 bytes where only 0 remain")
            flag = raw[position]
            position += 1
            if flag == 0:
                append(None)
                continue
            if flag != 1:
                raise ProtocolError(
                    f"{wire_name} frame has invalid presence flag {flag}"
                )
            result = 0
            shift = 0
            while True:
                if position >= limit:
                    raise ProtocolError("frame body ends inside a uvarint")
                byte = raw[position]
                position += 1
                result |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
                if shift > 63:
                    raise ProtocolError("frame body uvarint does not fit in 64 bits")
            end = position + result
            if end > limit:
                raise ProtocolError(
                    f"frame body declares {result} bytes where only "
                    f"{limit - position} remain"
                )
            append(bytes(view[position:end]))
            position = end
        self._offset = position
        return tuple(values)

    def read_pairs(self, count: int) -> tuple[tuple[bytes, bytes], ...]:
        """``count`` blob pairs in one pass (MSET items, MKVALUE pairs)."""
        raw = self._raw
        view = self._view
        limit = self._end
        position = self._offset
        pairs: list[tuple[bytes, bytes]] = []
        append = pairs.append
        for _ in range(count):
            first: bytes | None = None
            for _half in range(2):
                result = 0
                shift = 0
                while True:
                    if position >= limit:
                        raise ProtocolError("frame body ends inside a uvarint")
                    byte = raw[position]
                    position += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 63:
                        raise ProtocolError(
                            "frame body uvarint does not fit in 64 bits"
                        )
                end = position + result
                if end > limit:
                    raise ProtocolError(
                        f"frame body declares {result} bytes where only "
                        f"{limit - position} remain"
                    )
                blob = bytes(view[position:end])
                position = end
                if first is None:
                    first = blob
                else:
                    append((first, blob))
        self._offset = position
        return tuple(pairs)

    def finish(self) -> None:
        if self._offset != self._end:
            raise ProtocolError(
                f"frame body has {self._end - self._offset} trailing bytes"
            )


def _blob(data: bytes) -> bytes:
    return encode_uvarint(len(data)) + data


# ------------------------------------------------------------------- messages


@dataclass(frozen=True)
class Message:
    """Base class of every typed wire message (request or response)."""

    #: opcode byte on the wire.
    opcode: ClassVar[int]
    #: opcode mnemonic used in docs and error messages.
    wire_name: ClassVar[str]
    #: "request" (client → server) or "response" (server → client).
    direction: ClassVar[str]

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "Message":
        return cls()


@dataclass(frozen=True)
class PingRequest(Message):
    opcode = 0x01
    wire_name = "PING"
    direction = "request"


@dataclass(frozen=True)
class GetRequest(Message):
    opcode = 0x02
    wire_name = "GET"
    direction = "request"

    key: bytes = b""

    def encode_body(self) -> bytes:
        return _blob(self.key)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "GetRequest":
        return cls(key=cursor.read_blob())


@dataclass(frozen=True)
class SetRequest(Message):
    opcode = 0x03
    wire_name = "SET"
    direction = "request"

    key: bytes = b""
    value: bytes = b""

    def encode_body(self) -> bytes:
        return _blob(self.key) + _blob(self.value)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "SetRequest":
        return cls(key=cursor.read_blob(), value=cursor.read_blob())


@dataclass(frozen=True)
class DeleteRequest(Message):
    opcode = 0x04
    wire_name = "DEL"
    direction = "request"

    key: bytes = b""

    def encode_body(self) -> bytes:
        return _blob(self.key)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "DeleteRequest":
        return cls(key=cursor.read_blob())


@dataclass(frozen=True)
class MGetRequest(Message):
    opcode = 0x05
    wire_name = "MGET"
    direction = "request"

    keys: tuple[bytes, ...] = ()

    def encode_body(self) -> bytes:
        parts = [encode_uvarint(len(self.keys))]
        parts.extend(_blob(key) for key in self.keys)
        return b"".join(parts)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "MGetRequest":
        return cls(keys=cursor.read_blobs(cursor.read_uvarint()))


@dataclass(frozen=True)
class MSetRequest(Message):
    opcode = 0x06
    wire_name = "MSET"
    direction = "request"

    items: tuple[tuple[bytes, bytes], ...] = ()

    def encode_body(self) -> bytes:
        parts = [encode_uvarint(len(self.items))]
        for key, value in self.items:
            parts.append(_blob(key))
            parts.append(_blob(value))
        return b"".join(parts)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "MSetRequest":
        return cls(items=cursor.read_pairs(cursor.read_uvarint()))


@dataclass(frozen=True)
class StatsRequest(Message):
    opcode = 0x07
    wire_name = "STATS"
    direction = "request"


@dataclass(frozen=True)
class MetricsRequest(Message):
    """Ask for the Prometheus exposition text (see docs/FORMATS.md §9)."""

    opcode = 0x08
    wire_name = "METRICS"
    direction = "request"


@dataclass(frozen=True)
class ScanRequest(Message):
    """Ordered range scan: optional ``start``/``end`` bounds plus a limit.

    ``start`` is inclusive, ``end`` exclusive; an absent bound is open.
    ``limit == 0`` means unlimited (subject to the server's batch-item cap).
    The response is a *stream* of MKVALUE chunks, the last one flagged final.
    """

    opcode = 0x09
    wire_name = "SCAN"
    direction = "request"

    start: bytes | None = None
    end: bytes | None = None
    limit: int = 0

    def encode_body(self) -> bytes:
        parts = []
        for bound in (self.start, self.end):
            if bound is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01" + _blob(bound))
        parts.append(encode_uvarint(self.limit))
        return b"".join(parts)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "ScanRequest":
        bounds: list[bytes | None] = []
        for _ in range(2):
            flag = cursor.read_u8()
            if flag == 0:
                bounds.append(None)
            elif flag == 1:
                bounds.append(cursor.read_blob())
            else:
                raise ProtocolError(f"SCAN frame has invalid presence flag {flag}")
        return cls(start=bounds[0], end=bounds[1], limit=cursor.read_uvarint())


@dataclass(frozen=True)
class OkResponse(Message):
    """Acknowledges SET / MSET."""

    opcode = 0x80
    wire_name = "OK"
    direction = "response"


@dataclass(frozen=True)
class PongResponse(Message):
    opcode = 0x81
    wire_name = "PONG"
    direction = "response"


@dataclass(frozen=True)
class ValueResponse(Message):
    """GET result: a one-byte presence flag, then the value blob if present."""

    opcode = 0x82
    wire_name = "VALUE"
    direction = "response"

    value: bytes | None = None

    def encode_body(self) -> bytes:
        if self.value is None:
            return b"\x00"
        return b"\x01" + _blob(self.value)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "ValueResponse":
        flag = cursor.read_u8()
        if flag == 0:
            return cls(value=None)
        if flag == 1:
            return cls(value=cursor.read_blob())
        raise ProtocolError(f"VALUE frame has invalid presence flag {flag}")


@dataclass(frozen=True)
class CountResponse(Message):
    """DEL result (0/1 for existed) — a bare uvarint counter."""

    opcode = 0x83
    wire_name = "COUNT"
    direction = "response"

    count: int = 0

    def encode_body(self) -> bytes:
        return encode_uvarint(self.count)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "CountResponse":
        return cls(count=cursor.read_uvarint())


@dataclass(frozen=True)
class MultiValueResponse(Message):
    """MGET result: per-key presence flag + value blob, in request key order."""

    opcode = 0x84
    wire_name = "MVALUE"
    direction = "response"

    values: tuple[bytes | None, ...] = ()

    def encode_body(self) -> bytes:
        parts = [encode_uvarint(len(self.values))]
        for value in self.values:
            if value is None:
                parts.append(b"\x00")
            else:
                parts.append(b"\x01" + _blob(value))
        return b"".join(parts)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "MultiValueResponse":
        count = cursor.read_uvarint()
        return cls(values=cursor.read_flagged_blobs(count, "MVALUE"))


@dataclass(frozen=True)
class StatsResponse(Message):
    """STATS result: a UTF-8 JSON document (see ``KVServer._handle_stats``)."""

    opcode = 0x85
    wire_name = "STATSV"
    direction = "response"

    payload: bytes = b"{}"

    def encode_body(self) -> bytes:
        return _blob(self.payload)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "StatsResponse":
        return cls(payload=cursor.read_blob())


@dataclass(frozen=True)
class MetricsResponse(Message):
    """METRICS result: UTF-8 Prometheus text format 0.0.4.

    Byte-identical to what the HTTP sidecar's ``GET /metrics`` serves for
    the same registry state — both render through
    :func:`repro.obs.exposition.render_text`.
    """

    opcode = 0x86
    wire_name = "METRICSV"
    direction = "response"

    payload: bytes = b""

    def encode_body(self) -> bytes:
        return _blob(self.payload)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "MetricsResponse":
        return cls(payload=cursor.read_blob())


@dataclass(frozen=True)
class MultiKeyValueResponse(Message):
    """One SCAN result chunk: ``(key, value)`` pairs plus a final-chunk flag.

    A scan's response is one or more MKVALUE frames on the wire, in key
    order, with ``final`` set only on the last — the chunking keeps any
    single frame small so a huge range cannot head-of-line-block the other
    responses pipelined behind it.  An empty result is a single final frame
    with zero pairs.
    """

    opcode = 0x87
    wire_name = "MKVALUE"
    direction = "response"

    pairs: tuple[tuple[bytes, bytes], ...] = ()
    final: bool = True

    def encode_body(self) -> bytes:
        parts = [b"\x01" if self.final else b"\x00", encode_uvarint(len(self.pairs))]
        for key, value in self.pairs:
            parts.append(_blob(key))
            parts.append(_blob(value))
        return b"".join(parts)

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "MultiKeyValueResponse":
        flag = cursor.read_u8()
        if flag > 1:
            raise ProtocolError(f"MKVALUE frame has invalid final flag {flag}")
        return cls(pairs=cursor.read_pairs(cursor.read_uvarint()), final=bool(flag))


@dataclass(frozen=True)
class ErrorResponse(Message):
    """A server-side failure: the exception class name and its message."""

    opcode = 0xBF
    wire_name = "ERR"
    direction = "response"

    kind: str = "ReproError"
    message: str = ""

    def encode_body(self) -> bytes:
        return _blob(self.kind.encode("utf-8")) + _blob(self.message.encode("utf-8"))

    @classmethod
    def decode_body(cls, cursor: _Cursor) -> "ErrorResponse":
        kind = cursor.read_blob().decode("utf-8", errors="replace")
        message = cursor.read_blob().decode("utf-8", errors="replace")
        return cls(kind=kind, message=message)


#: Every frame type, in opcode order — the registry the decoder dispatches on
#: and the table docs/FORMATS.md §7 is pinned to by ``tests/test_docs.py``.
FRAME_TYPES: tuple[type[Message], ...] = (
    PingRequest,
    GetRequest,
    SetRequest,
    DeleteRequest,
    MGetRequest,
    MSetRequest,
    StatsRequest,
    MetricsRequest,
    ScanRequest,
    OkResponse,
    PongResponse,
    ValueResponse,
    CountResponse,
    MultiValueResponse,
    StatsResponse,
    MetricsResponse,
    MultiKeyValueResponse,
    ErrorResponse,
)

_FRAME_BY_OPCODE: dict[int, type[Message]] = {cls.opcode: cls for cls in FRAME_TYPES}
assert len(_FRAME_BY_OPCODE) == len(FRAME_TYPES), "duplicate opcode in FRAME_TYPES"


def opcode_table() -> list[dict]:
    """Rows describing every frame type (the ``repro serve`` docs table)."""
    return [
        {
            "opcode": f"0x{cls.opcode:02X}",
            "name": cls.wire_name,
            "direction": cls.direction,
            "type": cls.__name__,
        }
        for cls in FRAME_TYPES
    ]


# ------------------------------------------------------------------- encoding


def encode_frame(message: Message) -> bytes:
    """Serialise one message into a complete wire frame."""
    body = message.encode_body()
    return MAGIC + bytes([message.opcode]) + encode_uvarint(len(body)) + body


# ------------------------------------------------------------------- decoding


class FrameDecoder:
    """Incremental frame parser tolerating arbitrary chunk boundaries.

    Feed it whatever the socket produced; it returns every complete message
    and buffers the rest.  All validation happens as early as the bytes
    allow: a wrong magic byte fails on the first mismatching byte, an unknown
    opcode fails as soon as the opcode byte arrives, and an oversized declared
    length fails before a single body byte is read.
    """

    def __init__(self, max_body: int = DEFAULT_MAX_BODY) -> None:
        if max_body < 1:
            raise ProtocolError("max_body must be positive")
        self.max_body = max_body
        self._buffer = bytearray()
        self._failure: ProtocolError | None = None

    @property
    def buffered(self) -> int:
        """Bytes currently held waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def failure(self) -> ProtocolError | None:
        """The error that poisoned this decoder, if any (see :meth:`feed`)."""
        return self._failure

    def feed(self, data: bytes | bytearray | memoryview) -> list[Message]:
        """Consume ``data`` and return every message completed by it.

        ``data`` may be ``bytes``, a ``bytearray`` or a ``memoryview`` (the
        fuzz suite feeds all three).  Parsing walks the receive buffer with
        an offset and a ``memoryview`` — frame bodies are sliced lazily, so
        neither the magic check nor the body extraction copies, and the
        buffer is compacted once per call instead of once per frame.

        Frames decoded *before* malformed bytes in the same chunk are never
        lost: when a chunk carries good frames followed by garbage, they are
        returned and the error is held — readable via :attr:`failure`
        immediately, and raised by the next :meth:`feed`/:meth:`eof` call —
        so outcomes do not depend on how TCP happened to segment the stream.
        A chunk whose *first* frame is malformed raises directly.
        """
        if self._failure is not None:
            raise self._failure
        buffer = self._buffer
        buffer.extend(data)
        messages: list[Message] = []
        offset = 0
        view = memoryview(buffer)
        try:
            while True:
                try:
                    parsed = self._try_parse(buffer, view, offset)
                except ProtocolError as error:
                    self._failure = error
                    if messages:
                        return messages
                    raise
                if parsed is None:
                    return messages
                message, offset = parsed
                messages.append(message)
        finally:
            view.release()
            if offset:
                # Replace rather than ``del buffer[:offset]``: a held failure
                # can keep body views alive through its traceback, and a
                # resize of an exported bytearray would raise BufferError.
                self._buffer = buffer[offset:]

    def eof(self) -> None:
        """Declare end-of-stream; held failures and partial frames error."""
        if self._failure is not None:
            raise self._failure
        if self._buffer:
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buffer)} byte(s) buffered"
            )

    def _try_parse(
        self, buffer: bytearray, view: memoryview, offset: int
    ) -> tuple[Message, int] | None:
        """Parse one frame at ``offset``; returns ``(message, next_offset)``.

        Validation stays as eager as the copying parser's: a partial magic
        prefix is checked byte-by-byte so the first wrong byte still raises
        without waiting for the rest of the envelope.
        """
        available = len(buffer) - offset
        if available < _MAGIC_LEN:
            for index in range(available):
                if buffer[offset + index] != MAGIC[index]:
                    prefix = bytes(buffer[offset : offset + available])
                    raise ProtocolError(
                        f"bad frame magic {prefix!r} (expected {MAGIC!r})"
                    )
            return None
        if view[offset : offset + _MAGIC_LEN] != MAGIC:
            prefix = bytes(buffer[offset : offset + _MAGIC_LEN])
            raise ProtocolError(f"bad frame magic {prefix!r} (expected {MAGIC!r})")
        if available < _MAGIC_LEN + 1:
            return None
        opcode = buffer[offset + _MAGIC_LEN]
        frame_type = _FRAME_BY_OPCODE.get(opcode)
        if frame_type is None:
            raise ProtocolError(f"unknown opcode 0x{opcode:02X}")
        length = self._read_header_uvarint(buffer, offset + _MAGIC_LEN + 1)
        if length is None:
            return None
        body_length, body_start = length
        if body_length > self.max_body:
            raise ProtocolError(
                f"declared body length {body_length} exceeds the "
                f"{self.max_body}-byte limit"
            )
        end = body_start + body_length
        if len(buffer) < end:
            return None
        cursor = _Cursor(buffer, view, body_start, end)
        message = frame_type.decode_body(cursor)
        cursor.finish()
        return message, end

    @staticmethod
    def _read_header_uvarint(buffer: bytearray, offset: int) -> tuple[int, int] | None:
        """Parse the body-length uvarint; ``None`` while bytes are missing."""
        result = 0
        shift = 0
        position = offset
        length = len(buffer)
        while True:
            if position - offset >= _MAX_UVARINT_BYTES:
                raise ProtocolError("frame length uvarint does not fit in 64 bits")
            if position >= length:
                return None
            byte = buffer[position]
            position += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, position
            shift += 7


def decode_frames(data: bytes, max_body: int = DEFAULT_MAX_BODY) -> list[Message]:
    """Decode a complete byte string into messages; partial trailing data errors."""
    decoder = FrameDecoder(max_body=max_body)
    messages = decoder.feed(data)
    decoder.eof()
    return messages
